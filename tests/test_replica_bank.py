"""Replica bank, fused step_matrix updates, and auto-tuner resize behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CrossbowConfig, CrossbowTrainer, ModelReplica, ReplicaBank, ReplicaPool
from repro.errors import ConfigurationError, SchedulingError
from repro.models import create_model
from repro.optim import EASGD, EASGDConfig, SMA, SMAConfig
from repro.utils.rng import RandomState


def _model(seed: int = 3):
    return create_model("mlp", rng=RandomState(seed, name="bank-test"))


def _replica(replica_id: int = 0, gpu_id: int = 0, stream_id: int = 0, seed: int = 3):
    return ModelReplica(replica_id, _model(seed), gpu_id, stream_id)


class TestModuleFlatStorage:
    def test_attach_preserves_values_and_aliases(self):
        model = _model()
        before = model.parameter_vector()
        flat = np.zeros(model.num_parameters(), dtype=np.float32)
        model.attach_parameter_storage(flat)
        np.testing.assert_array_equal(model.parameter_vector(), before)
        assert model.has_attached_storage()
        assert model.parameter_vector(copy=False) is flat
        for param in model.parameters():
            assert np.shares_memory(param.data, flat)
        # Writing the flat buffer is immediately visible through the parameters.
        flat += 1.0
        np.testing.assert_array_equal(model.parameter_vector(), before + 1.0)

    def test_load_parameter_vector_writes_through_storage(self):
        model = _model()
        flat = np.zeros(model.num_parameters(), dtype=np.float32)
        model.attach_parameter_storage(flat)
        target = np.arange(model.num_parameters(), dtype=np.float32)
        model.load_parameter_vector(target)
        np.testing.assert_array_equal(flat, target)
        np.testing.assert_array_equal(model.parameter_vector(), target)

    def test_detach_gives_private_memory(self):
        model = _model()
        flat = np.zeros(model.num_parameters(), dtype=np.float32)
        model.attach_parameter_storage(flat)
        values = model.parameter_vector()
        model.detach_parameter_storage()
        assert not model.has_attached_storage()
        flat += 100.0
        np.testing.assert_array_equal(model.parameter_vector(), values)

    def test_clone_of_attached_model_is_independent(self):
        model = _model()
        flat = np.zeros(model.num_parameters(), dtype=np.float32)
        model.attach_parameter_storage(flat)
        cloned = model.clone()
        assert not cloned.has_attached_storage()
        flat += 5.0
        assert not np.allclose(cloned.parameter_vector(), model.parameter_vector())

    def test_attach_rejects_wrong_size_or_dtype(self):
        model = _model()
        with pytest.raises(ValueError):
            model.attach_parameter_storage(np.zeros(model.num_parameters() + 1, dtype=np.float32))
        with pytest.raises(ValueError):
            model.attach_parameter_storage(np.zeros(model.num_parameters(), dtype=np.float64))

    def test_gradient_vector_into_preallocated_buffer(self):
        model = _model()
        out = np.full(model.num_parameters(), 7.0, dtype=np.float32)
        result = model.gradient_vector(out=out)
        assert result is out
        np.testing.assert_array_equal(out, np.zeros_like(out))  # grads are None
        with pytest.raises(ValueError):
            model.gradient_vector(out=np.zeros(model.num_parameters() + 1, dtype=np.float32))


class TestReplicaBank:
    def test_attach_makes_row_the_source_of_truth(self):
        replica = _replica()
        bank = ReplicaBank(replica.num_parameters(), capacity=2)
        row = bank.attach(replica)
        assert row == 0 and len(bank) == 1
        assert np.shares_memory(replica.view(), bank.active_matrix())
        bank.active_matrix()[0] += 2.5
        np.testing.assert_array_equal(replica.vector(), bank.row_view(0))

    def test_active_matrix_is_contiguous_view(self):
        bank = ReplicaBank(_model().num_parameters(), capacity=4)
        replicas = [_replica(i, seed=i + 1) for i in range(3)]
        for replica in replicas:
            bank.attach(replica)
        active = bank.active_matrix()
        assert active.shape[0] == 3
        assert active.base is not None  # a view, not a copy
        assert active.flags["C_CONTIGUOUS"]

    def test_detach_swaps_last_row_into_hole(self):
        bank = ReplicaBank(_model().num_parameters(), capacity=4)
        replicas = [_replica(i, seed=i + 1) for i in range(3)]
        for replica in replicas:
            bank.attach(replica)
        middle_values = replicas[1].vector()
        last_values = replicas[2].vector()
        bank.detach(replicas[1])
        assert len(bank) == 2
        assert replicas[1].bank is None and replicas[1].bank_row is None
        np.testing.assert_array_equal(replicas[1].vector(), middle_values)  # evicted keeps weights
        assert replicas[2].bank_row == 1
        np.testing.assert_array_equal(bank.row_view(1), last_values)
        assert np.shares_memory(replicas[2].view(), bank.active_matrix())

    def test_pack_reorders_rows_to_match_learner_order(self):
        bank = ReplicaBank(_model().num_parameters(), capacity=4)
        replicas = [_replica(i, seed=i + 1) for i in range(3)]
        for replica in replicas:
            bank.attach(replica)
        values = [replica.vector() for replica in replicas]
        order = [replicas[2], replicas[0], replicas[1]]
        bank.pack(order)
        for row, replica in enumerate(order):
            assert replica.bank_row == row
            np.testing.assert_array_equal(bank.row_view(row), replica.vector())
            assert np.shares_memory(replica.view(), bank.active_matrix())
        np.testing.assert_array_equal(bank.row_view(0), values[2])

    def test_pack_rejects_wrong_replica_set(self):
        bank = ReplicaBank(_model().num_parameters(), capacity=2)
        replica = _replica()
        bank.attach(replica)
        with pytest.raises(SchedulingError):
            bank.pack([replica, _replica(9)])

    def test_grow_beyond_capacity_preserves_weights_and_views(self):
        bank = ReplicaBank(_model().num_parameters(), capacity=1)
        first = _replica(0, seed=1)
        bank.attach(first)
        first_values = first.vector()
        second = _replica(1, seed=2)
        bank.attach(second)  # forces reallocation
        assert bank.capacity >= 2
        np.testing.assert_array_equal(bank.row_view(0), first_values)
        assert np.shares_memory(first.view(), bank.active_matrix())
        assert np.shares_memory(second.view(), bank.active_matrix())

    def test_attach_rejects_double_attach_and_size_mismatch(self):
        replica = _replica()
        bank = ReplicaBank(replica.num_parameters(), capacity=2)
        bank.attach(replica)
        with pytest.raises(SchedulingError):
            bank.attach(replica)
        small = ReplicaBank(3, capacity=2)
        with pytest.raises(SchedulingError):
            small.attach(_replica(5))


class TestStepMatrix:
    def _matrices(self, k: int, p: int, seed: int = 11):
        rng = np.random.default_rng(seed)
        center = rng.normal(size=p).astype(np.float32)
        weights = rng.normal(size=(k, p)).astype(np.float32)
        updates = (0.01 * rng.normal(size=(k, p))).astype(np.float32)
        return center, weights, updates

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_sma_step_matrix_matches_step(self, momentum):
        k, p = 16, 257
        center, weights, _ = self._matrices(k, p)
        config = SMAConfig(momentum=momentum)
        loop = SMA(center, k, config)
        fused = SMA(center, k, config)
        current = weights.copy()
        matrix = weights.copy()
        for _ in range(5):
            current = np.stack(loop.step(list(current)))
            fused.step_matrix(matrix)
            np.testing.assert_allclose(matrix, current, atol=1e-6)
            np.testing.assert_allclose(fused.center, loop.center, atol=1e-6)
        assert fused.iteration == loop.iteration

    def test_sma_step_matrix_with_updates_matches_per_learner_loop(self):
        k, p = 8, 123
        center, weights, updates = self._matrices(k, p)
        reference = SMA(center, k, SMAConfig(momentum=0.9))
        fused = SMA(center, k, SMAConfig(momentum=0.9))
        # Reference: the trainer's historical per-learner sequence.
        expected = weights.copy()
        corrections = [reference.correction(expected[j]) for j in range(k)]
        for j in range(k):
            expected[j] = expected[j] - (updates[j] + corrections[j])
        reference.apply_corrections(corrections)
        matrix = weights.copy()
        fused.step_matrix(matrix, updates.copy())
        np.testing.assert_allclose(matrix, expected, atol=1e-6)
        np.testing.assert_allclose(fused.center, reference.center, atol=1e-6)

    def test_sma_step_matrix_respects_synchronisation_period(self):
        k, p = 4, 31
        center, weights, updates = self._matrices(k, p)
        sma = SMA(center, k, SMAConfig(synchronisation_period=3))
        matrix = weights.copy()
        sma.step_matrix(matrix, updates)  # iteration 0: no sync
        np.testing.assert_allclose(matrix, weights - updates, atol=1e-7)
        np.testing.assert_array_equal(sma.center, center)

    def test_sma_alpha_zero_freezes_center_and_replicas_diverge_freely(self):
        k, p = 3, 17
        center, weights, updates = self._matrices(k, p)
        sma = SMA(center, k, SMAConfig(momentum=0.9, alpha=0.0))
        matrix = weights.copy()
        for _ in range(4):
            sma.step_matrix(matrix, updates)
        np.testing.assert_array_equal(sma.center, center)  # bit-exact: no drift
        np.testing.assert_allclose(matrix, weights - 4 * updates, atol=1e-5)

    def test_easgd_step_matrix_matches_step(self):
        k, p = 16, 101
        center, weights, _ = self._matrices(k, p)
        loop = EASGD(center, k, EASGDConfig())
        fused = EASGD(center, k, EASGDConfig())
        current = weights.copy()
        matrix = weights.copy()
        for _ in range(5):
            current = np.stack(loop.step(list(current)))
            fused.step_matrix(matrix)
            np.testing.assert_allclose(matrix, current, atol=1e-6)
            np.testing.assert_allclose(fused.center, loop.center, atol=1e-6)

    def test_step_matrix_rejects_bad_shapes(self):
        sma = SMA(np.zeros(4, dtype=np.float32), 2)
        with pytest.raises(ConfigurationError):
            sma.step_matrix(np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(ConfigurationError):
            sma.step_matrix(
                np.zeros((2, 4), dtype=np.float32), np.zeros((2, 5), dtype=np.float32)
            )

    def test_step_matrix_rejects_non_ndarray_weights(self):
        # A list of rows would be copied by asarray and the in-place update
        # lost, so it must be rejected loudly rather than silently ignored.
        sma = SMA(np.zeros(4, dtype=np.float32), 2)
        rows = [np.zeros(4, dtype=np.float32), np.zeros(4, dtype=np.float32)]
        with pytest.raises(ConfigurationError):
            sma.step_matrix(rows)
        easgd = EASGD(np.zeros(4, dtype=np.float32), 2)
        with pytest.raises(ConfigurationError):
            easgd.step_matrix(rows)


class TestReplicaPoolLocked:
    def test_locked_blocks_checkout_but_allows_resize(self):
        pool = ReplicaPool()
        pool.add(_model(), 0, 0)
        with pool.locked():
            with pytest.raises(SchedulingError):
                pool.acquire()
            added = pool.add(_model(), 0, 1)
            assert pool.remove_last_on_gpu(0).replica_id == added.replica_id
        pool.acquire()  # unlocked again

    def test_locked_releases_on_exception(self):
        pool = ReplicaPool()
        pool.add(_model(), 0, 0)
        with pytest.raises(RuntimeError):
            with pool.locked():
                raise RuntimeError("resize failed")
        pool.acquire()  # the lock must not leak

    def test_locked_rejects_reentry(self):
        pool = ReplicaPool()
        with pool.locked():
            with pytest.raises(SchedulingError):
                with pool.locked():
                    pass

    def test_plain_lock_still_rejects_all_mutation(self):
        pool = ReplicaPool()
        pool.add(_model(), 0, 0)
        pool.lock()
        with pytest.raises(SchedulingError):
            pool.add(_model(), 0, 1)
        with pytest.raises(SchedulingError):
            pool.remove_last_on_gpu(0)
        pool.unlock()


class TestAutoTunerResizeCycles:
    def _trainer(self, **overrides):
        base = dict(
            model_name="mlp",
            dataset_name="blobs",
            num_gpus=2,
            batch_size=16,
            replicas_per_gpu=1,
            max_replicas_per_gpu=4,
            max_epochs=1,
            dataset_overrides={"num_train": 256, "num_test": 128},
            seed=13,
        )
        base.update(overrides)
        return CrossbowTrainer(CrossbowConfig(**base))

    def _assert_consistent(self, trainer):
        active_ids = sorted(l.replica.replica_id for l in trainer.learners)
        assert sorted(trainer.replica_pool.all_replicas(), key=lambda r: r.replica_id) == sorted(
            (l.replica for l in trainer.learners), key=lambda r: r.replica_id
        )
        # Scheduler tracks exactly the active replicas — no stale entries.
        assert trainer.scheduler.registered_replica_ids() == active_ids
        # Bank rows are dense, in learner order, and are the live weights.
        assert len(trainer.replica_bank) == len(trainer.learners)
        for row, learner in enumerate(trainer.learners):
            assert learner.replica.bank_row == row
            assert np.shares_memory(
                learner.replica.view(), trainer.replica_bank.active_matrix()
            )
        assert trainer.synchroniser.num_replicas == len(trainer.learners)

    def test_grow_shrink_grow_cycle(self):
        trainer = self._trainer()
        assert len(trainer.replica_pool) == 2
        self._assert_consistent(trainer)

        trainer._grow_learners()
        assert len(trainer.replica_pool) == 4
        self._assert_consistent(trainer)

        trainer._shrink_learners()
        assert len(trainer.replica_pool) == 2
        self._assert_consistent(trainer)

        trainer._grow_learners()
        assert len(trainer.replica_pool) == 4
        self._assert_consistent(trainer)

    def test_oscillation_reuses_gpu_streams(self):
        trainer = self._trainer()
        trainer._grow_learners()
        streams_after_first_grow = {
            gpu.gpu_id: len(gpu.streams) for gpu in trainer.server.gpus
        }
        for _ in range(4):
            trainer._shrink_learners()
            trainer._grow_learners()
        for gpu in trainer.server.gpus:
            # Oscillation must not leak streams: retired ones are reused.
            assert len(gpu.streams) == streams_after_first_grow[gpu.gpu_id]
            assert len(gpu.learner_streams()) == 2

    def test_resize_preserves_center_bit_exact(self):
        trainer = self._trainer()
        trainer.train()  # move the centre away from initialisation
        for resize in (trainer._grow_learners, trainer._shrink_learners, trainer._grow_learners):
            before = trainer.central_model_vector()
            iteration_before = trainer.synchroniser.iteration
            resize()
            after = trainer.central_model_vector()
            np.testing.assert_array_equal(after, before)  # bit-exact
            assert trainer.synchroniser.iteration == iteration_before

    def test_new_learners_start_from_center_and_training_continues(self):
        trainer = self._trainer()
        trainer.train()
        center = trainer.central_model_vector()
        count_before = len(trainer.learners)
        trainer._grow_learners()
        for learner in trainer.learners[count_before:]:
            np.testing.assert_allclose(learner.replica.vector(), center, atol=1e-7)
        # The engine keeps training correctly after the resize.
        result_loss = trainer._train_epoch(epoch=1)
        assert np.isfinite(result_loss)
        assert np.isfinite(trainer.evaluate())

    def test_autotuned_training_run_stays_consistent(self):
        trainer = self._trainer(
            num_gpus=1,
            auto_tune=True,
            auto_tune_interval=2,
            max_epochs=3,
        )
        trainer.train()
        self._assert_consistent(trainer)
