"""Forward-pass correctness of the functional operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, functional as F
from repro.utils.rng import RandomState

rng = RandomState(7, name="functional-tests")


class TestShapes:
    def test_conv2d_output_shape(self):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_conv2d_stride_and_padding_shapes(self):
        x = Tensor(rng.normal(size=(1, 1, 7, 7)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=0).shape == (1, 2, 3, 3)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 2, 4, 4)

    def test_conv2d_channel_mismatch_raises(self):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        with pytest.raises(ShapeError):
            F.conv2d(x, w)

    def test_conv2d_empty_output_raises(self):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ShapeError):
            F.conv2d(x, w)

    def test_pool_shapes(self):
        x = Tensor(rng.normal(size=(2, 4, 8, 8)))
        assert F.max_pool2d(x, 2).shape == (2, 4, 4, 4)
        assert F.avg_pool2d(x, 2).shape == (2, 4, 4, 4)
        assert F.max_pool2d(x, 2, stride=1).shape == (2, 4, 7, 7)

    def test_pad2d_shape(self):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        assert F.pad2d(x, 3).shape == (1, 2, 10, 10)


class TestNumericalSemantics:
    def test_conv2d_matches_direct_convolution(self):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=0).data[0, 0]
        expected = np.zeros((3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x.data[0, 0, i : i + 3, j : j + 3] * w.data[0, 0])
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_max_pool_picks_maximum(self):
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(data), 2).data[0, 0]
        np.testing.assert_allclose(out, [[5, 7], [13, 15]])

    def test_avg_pool_takes_mean(self):
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(data), 2).data[0, 0]
        np.testing.assert_allclose(out, [[2.5, 4.5], [10.5, 12.5]])

    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(rng.normal(scale=3.0, size=(10, 6)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), atol=1e-5)
        assert (probs >= 0).all()

    def test_softmax_is_shift_invariant(self):
        logits = rng.normal(size=(4, 5)).astype(np.float32)
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_log_softmax_consistent_with_softmax(self):
        logits = Tensor(rng.normal(size=(3, 7)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data + 1e-12), atol=1e-4
        )

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = np.full((4, 3), -20.0, dtype=np.float32)
        targets = np.array([0, 1, 2, 1])
        logits[np.arange(4), targets] = 20.0
        loss = F.cross_entropy(Tensor(logits), targets)
        assert float(loss.data) < 1e-3

    def test_cross_entropy_uniform_prediction_is_log_classes(self):
        logits = Tensor(np.zeros((6, 8), dtype=np.float32))
        targets = rng.integers(0, 8, size=6)
        loss = F.cross_entropy(logits, targets)
        assert float(loss.data) == pytest.approx(np.log(8), rel=1e-4)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_nll_loss_matches_cross_entropy(self):
        logits = Tensor(rng.normal(size=(5, 4)))
        targets = rng.integers(0, 4, size=5)
        ce = F.cross_entropy(logits, targets)
        nll = F.nll_loss(F.log_softmax(logits), targets)
        assert float(ce.data) == pytest.approx(float(nll.data), rel=1e-4)

    def test_batch_norm_normalises_training_batch(self):
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(64, 4)))
        gamma, beta = Tensor(np.ones(4)), Tensor(np.zeros(4))
        out = F.batch_norm(x, gamma, beta, training=True).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_batch_norm_updates_running_statistics(self):
        x = Tensor(rng.normal(loc=2.0, size=(32, 3)), requires_grad=True)
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        running_mean = np.zeros(3, dtype=np.float32)
        running_var = np.ones(3, dtype=np.float32)
        F.batch_norm(x, gamma, beta, running_mean, running_var, training=True, momentum=0.5)
        assert not np.allclose(running_mean, 0.0)

    def test_batch_norm_eval_uses_running_statistics(self):
        x = Tensor(np.full((4, 2), 3.0, dtype=np.float32))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        running_mean = np.full(2, 3.0, dtype=np.float32)
        running_var = np.ones(2, dtype=np.float32)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=False).data
        np.testing.assert_allclose(out, np.zeros((4, 2)), atol=1e-3)

    def test_dropout_scales_surviving_activations(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, p=0.4, training=True, rng=np.random.default_rng(3)).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, np.full_like(kept, 1.0 / 0.6), rtol=1e-5)
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_eval_is_identity(self):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, p=0.9, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_rejects_probability_one(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.0, training=True)
