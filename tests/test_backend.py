"""Tests for the pluggable kernel backend and probe-driven mode selection.

The backend contract is bit-identity: every registered provider must produce
the exact floats of the ``numpy`` reference on the three dense hot paths
(fused ``step_matrix``, gradient gather, batched evaluation forward).  These
tests pin that contract down per provider and per operation, then cover the
registry semantics (fallback when numba is absent, unknown names) and the
``execution="auto"`` calibration probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CrossbowConfig, CrossbowTrainer, modeselect
from repro.errors import ConfigurationError
from repro.models import create_model
from repro.optim.easgd import EASGD
from repro.optim.sma import SMA
from repro.tensor import backend as backend_module
from repro.tensor.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.telemetry.store import TelemetryStore
from repro.utils.rng import RandomState

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    _HAS_NUMBA = True
except ImportError:
    _HAS_NUMBA = False

PROVIDERS = available_backends()


def _bank(k, p, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((k, p)).astype(np.float32)


# ----------------------------------------------------------------------- registry
class TestRegistry:
    def test_reference_provider_listed_first(self):
        assert PROVIDERS[0] == "numpy"
        assert "blas_batched" in PROVIDERS

    def test_default_is_the_reference(self):
        assert get_backend().name == "numpy"
        assert get_backend(None).name == "numpy"

    def test_unknown_provider_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("cublas")

    @pytest.mark.skipif(_HAS_NUMBA, reason="numba is installed here")
    def test_absent_numba_falls_back_to_reference(self):
        fallback = get_backend("numba")
        assert fallback.name == "numpy"
        assert "numba" not in available_backends()

    def test_resolve_accepts_instances_and_names(self):
        instance = get_backend("blas_batched")
        assert resolve_backend(instance) is instance
        assert resolve_backend("blas_batched") is instance
        assert resolve_backend(None).name == "numpy"

    def test_duplicate_registration_needs_overwrite(self):
        class _Probe(KernelBackend):
            name = "test-probe"

        register_backend(_Probe())
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend(_Probe())
            register_backend(_Probe(), overwrite=True)  # explicit replace is fine
        finally:
            backend_module._REGISTRY.pop("test-probe")


# ----------------------------------------------------------- provider bit-identity
@pytest.mark.parametrize("provider", PROVIDERS)
@pytest.mark.parametrize("k", [1, 4, 16])
class TestProviderBitIdentity:
    def test_sma_step_matrix(self, provider, k):
        p = 257
        initial = _bank(1, p, seed=1)[0]
        reference = SMA(initial, num_replicas=k, backend="numpy")
        candidate = SMA(initial, num_replicas=k, backend=provider)
        weights_a = np.tile(initial, (k, 1))
        weights_b = weights_a.copy()
        for step in range(4):
            updates = _bank(k, p, seed=10 + step)
            reference.step_matrix(weights_a, updates.copy())
            candidate.step_matrix(weights_b, updates.copy())
        np.testing.assert_array_equal(weights_a, weights_b)
        np.testing.assert_array_equal(reference.center, candidate.center)

    def test_easgd_step_matrix(self, provider, k):
        p = 129
        initial = _bank(1, p, seed=2)[0]
        reference = EASGD(initial, num_replicas=k, backend="numpy")
        candidate = EASGD(initial, num_replicas=k, backend=provider)
        weights_a = np.tile(initial, (k, 1))
        weights_b = weights_a.copy()
        for step in range(4):
            updates = _bank(k, p, seed=20 + step)
            reference.step_matrix(weights_a, updates.copy())
            candidate.step_matrix(weights_b, updates.copy())
        np.testing.assert_array_equal(weights_a, weights_b)
        np.testing.assert_array_equal(reference.center, candidate.center)

    def test_gradient_gather(self, provider, k):
        model = create_model("mlp", rng=RandomState(3), input_dim=8, num_classes=4)
        rng = np.random.default_rng(k)
        for index, param in enumerate(model.parameters()):
            # Leave one parameter's gradient unset: gather must zero-fill it.
            param.grad = (
                None
                if index == 1
                else rng.standard_normal(param.data.shape).astype(np.float32)
            )
        plain = model.gradient_vector()
        routed = model.gradient_vector(backend=get_backend(provider))
        np.testing.assert_array_equal(plain, routed)

    def test_fused_evaluation_forward(self, provider, k):
        """Linear / ReLU / conv / BN batched kernels match the reference floats."""
        reference = get_backend("numpy")
        candidate = get_backend(provider)
        rng = np.random.default_rng(40 + k)

        act = rng.standard_normal((k, 6, 5)).astype(np.float32)
        weights = rng.standard_normal((k, 5, 3)).astype(np.float32)
        bias = rng.standard_normal((k, 1, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            reference.batched_linear(act, weights, bias),
            candidate.batched_linear(act, weights, bias),
        )
        np.testing.assert_array_equal(reference.relu(act), candidate.relu(act))

        # Shared and per-model im2col column buffers, as the evaluator emits
        # them before/after the first parameterised op.
        conv_weights = rng.standard_normal((k, 4, 18)).astype(np.float32)
        shared_cols = rng.standard_normal((6, 18, 9)).astype(np.float32)
        batched_cols = rng.standard_normal((k, 6, 18, 9)).astype(np.float32)
        np.testing.assert_array_equal(
            reference.batched_conv2d(conv_weights, shared_cols),
            candidate.batched_conv2d(conv_weights, shared_cols),
        )
        np.testing.assert_array_equal(
            reference.batched_conv2d(conv_weights, batched_cols),
            candidate.batched_conv2d(conv_weights, batched_cols),
        )

        spatial = rng.standard_normal((k, 6, 4, 3, 3)).astype(np.float32)
        gamma = rng.standard_normal((k, 4)).astype(np.float32)
        beta = rng.standard_normal((k, 4)).astype(np.float32)
        mean = rng.standard_normal((k, 4)).astype(np.float32)
        var = (1.0 + rng.uniform(0.0, 1.0, size=(k, 4))).astype(np.float32)
        np.testing.assert_array_equal(
            reference.batched_batchnorm(spatial, gamma, beta, mean, var, 1e-5),
            candidate.batched_batchnorm(spatial, gamma, beta, mean, var, 1e-5),
        )


# ------------------------------------------------------------- trainer integration
_DATASET = {"num_train": 256, "num_test": 128, "noise_scale": 2.5}


def _config(**overrides):
    defaults = dict(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=2,
        max_epochs=2,
        dataset_overrides=dict(_DATASET),
        seed=7,
    )
    defaults.update(overrides)
    return CrossbowConfig(**defaults)


class TestTrainerBackendEquivalence:
    def test_invalid_backend_name_is_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            CrossbowTrainer(_config(kernel_backend="cublas"))

    @pytest.mark.parametrize("provider", [p for p in PROVIDERS if p != "numpy"])
    def test_fixed_seed_training_is_backend_invariant(self, provider):
        baseline = CrossbowTrainer(_config()).train()
        routed = CrossbowTrainer(_config(kernel_backend=provider)).train()
        for ours, theirs in zip(baseline.metrics.records, routed.metrics.records):
            assert ours.test_accuracy == theirs.test_accuracy
            assert ours.train_loss == theirs.train_loss


# ------------------------------------------------------------------ mode selection
class TestModeSelection:
    def test_recommend_is_monotone_in_cores(self):
        assert modeselect.recommend(1, 0.5, -1.0) == ("serial", 0)
        assert modeselect.recommend(2, 0.5, 1.0) == ("process", 0)
        assert modeselect.recommend(8, 0.5, 1.0) == ("process", 1)
        # A round-trip dearer than the budget kills process mode regardless.
        assert modeselect.recommend(8, 0.01, 100.0) == ("serial", 0)

    def test_probe_on_one_core_host_selects_serial(self, tmp_path, monkeypatch):
        monkeypatch.setattr(modeselect, "cpu_count", lambda: 1)
        store = TelemetryStore(tmp_path / "telemetry.sqlite")
        try:
            probe = modeselect.probe_host(store=store)
            assert (probe.execution, probe.pipeline_depth) == ("serial", 0)
            assert probe.cores == 1
            assert probe.worker_roundtrip_ms == -1.0  # skipped, not measured
            assert not probe.cached
            # The measurement landed in the store under the host's bench name.
            bench = f"modeselect_probe/{probe.host}"
            history = store.bench_history(bench, row_index=0, metric="cores", last_n=1)
            assert [value for _, value in history] == [1.0]
        finally:
            store.close()

    def test_second_probe_is_served_from_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setattr(modeselect, "cpu_count", lambda: 1)
        store = TelemetryStore(tmp_path / "telemetry.sqlite")
        try:
            first = modeselect.probe_host(store=store)

            def _boom():
                raise AssertionError("cached probe must not re-measure")

            monkeypatch.setattr(modeselect, "_time_fused_step", _boom)
            second = modeselect.probe_host(store=store)
            assert second.cached
            assert (second.execution, second.pipeline_depth) == (
                first.execution,
                first.pipeline_depth,
            )
        finally:
            store.close()

    def test_resolve_auto_passthrough_for_explicit_modes(self):
        config = _config(execution="serial")
        assert modeselect.resolve_auto_execution(config) is config

    def test_trainer_auto_resolves_serial_on_one_core(self, tmp_path, monkeypatch):
        monkeypatch.setattr(modeselect, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_TELEMETRY_DB", str(tmp_path / "telemetry.sqlite"))
        trainer = CrossbowTrainer(_config(execution="auto"))
        try:
            assert trainer.config.execution == "serial"
            assert trainer.config.pipeline_depth == 0
        finally:
            trainer.close()
        # The probe row persisted, so a second trainer reuses it (cache hit).
        monkeypatch.setattr(
            modeselect,
            "_time_fused_step",
            lambda: (_ for _ in ()).throw(AssertionError("must hit the cache")),
        )
        again = CrossbowTrainer(_config(execution="auto"))
        try:
            assert again.config.execution == "serial"
        finally:
            again.close()
