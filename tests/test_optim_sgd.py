"""SGD with momentum and the learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import (
    SGD,
    ConstantSchedule,
    MultiStepSchedule,
    StepDecaySchedule,
    WarmupSchedule,
    schedule_for_model,
)
from repro.optim.schedules import hyperparameters_for_model
from repro.tensor import Tensor
from repro.utils.rng import RandomState

rng = RandomState(21, name="sgd-tests")


def _quadratic_model():
    """A single-parameter model whose loss is (w - 3)^2, for analytic checks."""
    from repro.nn.module import Module, Parameter

    class Quadratic(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.array([0.0], dtype=np.float32))

        def forward(self, _x=None):
            return self.w

    return Quadratic()


class TestSGD:
    def test_plain_sgd_step_matches_formula(self):
        model = _quadratic_model()
        optimizer = SGD(model, learning_rate=0.1, momentum=0.0)
        model.w.grad = np.array([2.0], dtype=np.float32)  # d/dw (w-3)^2 at w=0 is -6... use 2
        optimizer.step()
        assert model.w.data[0] == pytest.approx(-0.2)

    def test_momentum_accumulates_velocity(self):
        model = _quadratic_model()
        optimizer = SGD(model, learning_rate=0.1, momentum=0.9)
        for _ in range(2):
            model.w.grad = np.array([1.0], dtype=np.float32)
            optimizer.step()
        # v1 = -0.1; w1 = -0.1; v2 = 0.9*(-0.1) - 0.1 = -0.19; w2 = -0.29
        assert model.w.data[0] == pytest.approx(-0.29, rel=1e-5)

    def test_weight_decay_shrinks_weights_without_gradient_signal(self):
        model = _quadratic_model()
        model.w.data[...] = 4.0
        optimizer = SGD(model, learning_rate=0.5, momentum=0.0, weight_decay=0.1)
        model.w.grad = np.array([0.0], dtype=np.float32)
        optimizer.step()
        assert model.w.data[0] < 4.0

    def test_parameters_without_grad_are_skipped(self):
        model = _quadratic_model()
        optimizer = SGD(model, learning_rate=0.1)
        optimizer.step()  # no grads set anywhere
        assert model.w.data[0] == 0.0

    def test_invalid_hyperparameters_rejected(self):
        model = _quadratic_model()
        with pytest.raises(ConfigurationError):
            SGD(model, learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGD(model, learning_rate=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(model, learning_rate=0.1, weight_decay=-0.1)

    def test_apply_update_vector_round_trip(self):
        model = MLP(input_dim=6, num_classes=3, hidden_sizes=(4,), rng=rng)
        optimizer = SGD(model, learning_rate=0.1)
        before = model.parameter_vector()
        update = np.ones_like(before)
        optimizer.apply_update_vector(update)
        np.testing.assert_allclose(model.parameter_vector(), before + 1.0, rtol=1e-6)
        with pytest.raises(ConfigurationError):
            optimizer.apply_update_vector(np.ones(3))

    def test_state_dict_round_trip_preserves_velocity(self):
        model = _quadratic_model()
        optimizer = SGD(model, learning_rate=0.1, momentum=0.9)
        model.w.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()
        payload = optimizer.state_dict()

        model2 = _quadratic_model()
        model2.w.data[...] = model.w.data
        optimizer2 = SGD(model2, learning_rate=0.1, momentum=0.9)
        optimizer2.load_state_dict(payload)
        model2.w.grad = np.array([1.0], dtype=np.float32)
        model.w.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()
        optimizer2.step()
        assert model.w.data[0] == pytest.approx(model2.w.data[0])

    def test_sgd_trains_mlp_to_high_accuracy(self, blobs_dataset):
        model = MLP(input_dim=16, num_classes=4, hidden_sizes=(16,), rng=rng)
        optimizer = SGD(model, learning_rate=0.1, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        images = blobs_dataset.train_images
        labels = blobs_dataset.train_labels
        for _ in range(40):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
        from repro.nn.metrics import accuracy
        from repro.tensor import no_grad

        model.eval()
        with no_grad():
            acc = accuracy(model(Tensor(blobs_dataset.test_images)), blobs_dataset.test_labels)
        assert acc > 0.9


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.05)
        assert schedule.rate(0) == schedule.rate(100) == 0.05

    def test_multistep_matches_resnet_recipe(self):
        schedule = MultiStepSchedule(0.1, milestones=[80, 120], gamma=0.1)
        assert schedule.rate(10) == pytest.approx(0.1)
        assert schedule.rate(80) == pytest.approx(0.01)
        assert schedule.rate(121) == pytest.approx(0.001)

    def test_step_decay_matches_vgg_recipe(self):
        schedule = StepDecaySchedule(0.1, period=20, gamma=0.5)
        assert schedule.rate(19) == pytest.approx(0.1)
        assert schedule.rate(20) == pytest.approx(0.05)
        assert schedule.rate(40) == pytest.approx(0.025)

    def test_warmup_ramps_to_inner_schedule(self):
        schedule = WarmupSchedule(ConstantSchedule(0.4), warmup_epochs=4)
        assert schedule.rate(1) == pytest.approx(0.1)
        assert schedule.rate(4) == pytest.approx(0.4)
        assert schedule.rate(10) == pytest.approx(0.4)

    def test_changed_at_detects_boundaries(self):
        schedule = MultiStepSchedule(0.1, milestones=[5])
        assert not schedule.changed_at(3, 4)
        assert schedule.changed_at(4, 5)

    def test_schedule_for_model_shapes(self):
        assert isinstance(schedule_for_model("resnet32"), MultiStepSchedule)
        assert isinstance(schedule_for_model("vgg16"), StepDecaySchedule)
        assert isinstance(schedule_for_model("resnet50-scaled"), MultiStepSchedule)
        assert isinstance(schedule_for_model("lenet"), ConstantSchedule)

    def test_paper_hyperparameters_exist_for_all_models(self):
        for model in ("lenet", "resnet32", "resnet50", "vgg16"):
            params = hyperparameters_for_model(model)
            assert set(params) == {"learning_rate", "momentum", "weight_decay"}

    def test_unknown_model_hyperparameters_raise(self):
        with pytest.raises(ConfigurationError):
            hyperparameters_for_model("alexnet")

    def test_invalid_schedule_parameters(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)
        with pytest.raises(ConfigurationError):
            StepDecaySchedule(0.1, period=0)
        with pytest.raises(ConfigurationError):
            MultiStepSchedule(-0.1, milestones=[1])
