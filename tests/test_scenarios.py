"""Tests for the scenario harness: traces, SLOs, the runner, and fault injection.

Four layers, mirroring the module structure:

* trace generators — fixed-seed determinism (in-process, across reruns, and
  across ``fan`` worker processes), seed sensitivity, and shape sanity for
  every catalogue trace;
* SLO specs — at least one genuine pass and one deliberate violation verdict,
  plus the bound arithmetic;
* the virtual-time runner — admission/deadline/batching semantics per policy,
  conservation after a full drain, sweep determinism for any ``n_jobs``,
  closed-loop accounting;
* live replays — conservation against a real ``InferenceServer`` thread, and
  the fault-injection scenario: an ``EvaluatorPool`` worker killed mid-run
  (under ``REPRO_SHM_SANITIZE=1``, so dead-holder reclamation runs end to
  end) with every request still resolved exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported
from repro.errors import ConfigurationError
from repro.models import create_model
from repro.scenarios import (
    ClosedLoopTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    PoissonTrace,
    Scenario,
    ScenarioRunner,
    ServiceModel,
    SlowDrainTrace,
    SLOSpec,
    TRACES,
    expand_grid,
    fan,
    rerun_identical,
    run_autotuner_hysteresis_study,
    simulate,
    trace_catalogue,
)
from repro.serve import Checkpoint, EvaluationService, InferenceServer
from repro.utils.rng import RandomState

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)

#: slow service so small traces still build queues (one lane ~80 req/s at batch 8)
STRESS = ServiceModel(batch_overhead_ms=4.0, per_sample_ms=12.0)


def _arrival_times(trace, seed):
    return [arrival.at_s for arrival in trace.arrivals(seed)]


def _arrival_times_seed11(trace):
    # Module-level so `fan` can pickle it into worker processes.
    return _arrival_times(trace, seed=11)


# ---------------------------------------------------------------------- trace generators
class TestTraceDeterminism:
    @pytest.mark.parametrize("name", sorted(set(TRACES) - {"closedloop"}))
    def test_same_seed_bit_identical_across_runs(self, name):
        trace = TRACES[name]()
        assert _arrival_times(trace, seed=42) == _arrival_times(trace, seed=42)

    @pytest.mark.parametrize("name", sorted(set(TRACES) - {"closedloop"}))
    def test_different_seeds_differ(self, name):
        trace = TRACES[name]()
        assert _arrival_times(trace, seed=0) != _arrival_times(trace, seed=1)

    def test_closed_loop_think_times_deterministic_and_seed_sensitive(self):
        trace = ClosedLoopTrace(clients=4, requests_per_client=3)
        np.testing.assert_array_equal(trace.think_times(5), trace.think_times(5))
        assert not np.array_equal(trace.think_times(5), trace.think_times(6))

    @needs_fork
    def test_same_seed_bit_identical_across_processes(self):
        """`fan` workers must see the exact sequences the parent computes."""
        traces = trace_catalogue(duration_s=2.0)
        in_process = [_arrival_times(trace, seed=11) for trace in traces]
        fanned = fan(_arrival_times_seed11, traces, n_jobs=4)
        assert fanned == in_process

    def test_traces_never_share_a_stream(self):
        """Same seed, different trace names: independent child streams."""
        poisson = PoissonTrace(rate_rps=40.0)
        drain = SlowDrainTrace(start_rate=40.0, end_rate=40.0)  # same profile
        assert _arrival_times(poisson, 3) != _arrival_times(drain, 3)


class TestTraceShapes:
    def test_arrivals_sorted_and_bounded(self):
        for trace in trace_catalogue(duration_s=4.0):
            times = _arrival_times(trace, seed=0)
            assert times == sorted(times)
            assert all(0.0 < at < trace.duration_s for at in times)

    def test_poisson_rate_matches_request_count(self):
        trace = PoissonTrace(rate_rps=200.0, duration_s=10.0)
        observed = trace.offered(seed=1) / trace.duration_s
        assert observed == pytest.approx(200.0, rel=0.15)

    def test_flash_crowd_concentrates_in_burst_window(self):
        trace = FlashCrowdTrace(
            base_rate=10.0, burst_rate=200.0, burst_start_s=2.0, burst_duration_s=1.0,
            duration_s=8.0,
        )
        times = _arrival_times(trace, seed=0)
        in_burst = sum(1 for at in times if 2.0 <= at < 3.0)
        # Burst window is 1/8 of the timeline but carries most of the load.
        assert in_burst / len(times) > 0.5

    def test_diurnal_peak_outweighs_trough(self):
        trace = DiurnalTrace(base_rate=5.0, peak_rate_rps=100.0, period_s=8.0, duration_s=8.0)
        times = _arrival_times(trace, seed=2)
        trough = sum(1 for at in times if at < 2.0)  # cosine starts at the trough
        peak = sum(1 for at in times if 3.0 <= at < 5.0)
        assert peak > 2 * trough

    def test_slow_drain_front_loads(self):
        trace = SlowDrainTrace(start_rate=100.0, end_rate=2.0, duration_s=8.0)
        times = _arrival_times(trace, seed=3)
        first_half = sum(1 for at in times if at < 4.0)
        assert first_half > 0.6 * len(times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonTrace(rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalTrace(base_rate=50.0, peak_rate_rps=10.0)
        with pytest.raises(ConfigurationError):
            FlashCrowdTrace(burst_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            SlowDrainTrace(start_rate=1.0, end_rate=5.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopTrace(clients=0)
        with pytest.raises(ConfigurationError):
            ClosedLoopTrace().arrivals(0)  # closed loops have no fixed schedule
        with pytest.raises(ConfigurationError):
            trace_catalogue(scale=0.0)


# -------------------------------------------------------------------------- SLO verdicts
class TestSLOSpec:
    def test_pass_and_deliberate_violation_verdicts(self):
        """The acceptance pair: one scenario passes its SLO, one is designed
        to violate it (degrade mode under a flash crowd blows the p99 bound
        while serving everything)."""
        slo = SLOSpec(p99_latency_ms=400.0, min_served_fraction=0.5)
        calm = simulate(
            Scenario(
                trace=PoissonTrace(rate_rps=40.0, duration_s=2.0),
                admission_policy="reject",
                service=STRESS,
                slo=slo,
            )
        )
        overloaded = simulate(
            Scenario(
                trace=FlashCrowdTrace(duration_s=2.0, burst_start_s=0.5, burst_duration_s=0.5),
                admission_policy="degrade",
                service=STRESS,
                slo=slo,
            )
        )
        assert calm.slo_report is not None and calm.slo_report.verdict == "pass"
        assert overloaded.slo_report is not None and overloaded.slo_report.verdict == "fail"
        failed = overloaded.slo_report.failures()
        assert [check.objective for check in failed] == ["p99_latency_ms"]
        assert not overloaded.slo_report and bool(calm.slo_report)

    def test_bounds_arithmetic(self):
        spec = SLOSpec(
            p99_latency_ms=10.0,
            max_deadline_miss_rate=0.1,
            max_rejection_rate=0.25,
            min_served_fraction=0.5,
        )
        report = spec.evaluate(
            {
                "offered": 100,
                "accepted": 80,
                "rejected": 20,
                "shed": 10,
                "deadline_missed": 4,
                "served": 66,
                "p99_ms": 9.0,
            }
        )
        observed = {check.objective: (check.observed, check.ok) for check in report.checks}
        assert observed["p99_latency_ms"] == (9.0, True)
        assert observed["deadline_miss_rate"] == (pytest.approx(0.05), True)
        assert observed["rejection_rate"] == (pytest.approx(0.3), False)
        assert observed["served_fraction"] == (pytest.approx(0.66), True)
        assert report.verdict == "fail"

    def test_empty_spec_passes_vacuously(self):
        assert SLOSpec().evaluate({"offered": 0}).passed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLOSpec(p99_latency_ms=-1.0)


# ------------------------------------------------------------------------ the simulator
class TestSimulatorSemantics:
    def _burst(self, **overrides):
        settings = dict(
            trace=FlashCrowdTrace(duration_s=2.0, burst_start_s=0.5, burst_duration_s=0.5),
            admission_policy="reject",
            max_queue_depth=4,
            service=STRESS,
            seed=0,
        )
        settings.update(overrides)
        return Scenario(**settings)

    def test_reject_bounds_queue_and_refuses(self):
        result = simulate(self._burst(admission_policy="reject"))
        assert result.counters.rejected > 0
        assert result.counters.shed == 0
        assert result.counters.max_queue_depth_seen <= 4 + 1  # +1: the admitted request

    def test_shed_oldest_drops_instead_of_refusing(self):
        result = simulate(self._burst(admission_policy="shed-oldest"))
        assert result.counters.shed > 0
        assert result.counters.rejected == 0
        assert result.counters.max_queue_depth_seen <= 4 + 1

    def test_degrade_serves_everything_with_degraded_batches(self):
        result = simulate(self._burst(admission_policy="degrade"))
        assert result.counters.rejected == 0 and result.counters.shed == 0
        assert result.served == result.counters.offered
        assert result.counters.degraded_batches > 0

    def test_none_policy_is_unbounded(self):
        result = simulate(self._burst(admission_policy="none", max_queue_depth=None))
        assert result.served == result.counters.offered
        assert result.counters.max_queue_depth_seen > 4

    def test_deadlines_expire_queued_requests(self):
        with_deadline = simulate(self._burst(admission_policy="none", max_queue_depth=None,
                                             deadline_ms=30.0))
        assert with_deadline.counters.deadline_missed > 0
        assert with_deadline.conserved

    def test_conservation_for_every_policy(self):
        for policy in ("none", "reject", "shed-oldest", "degrade"):
            result = simulate(
                self._burst(
                    admission_policy=policy,
                    max_queue_depth=None if policy == "none" else 4,
                    deadline_ms=50.0,
                )
            )
            counters = result.counters
            assert counters.offered == counters.accepted + counters.rejected
            assert counters.accepted == result.served + counters.shed + counters.deadline_missed

    def test_more_workers_cut_latency(self):
        slow = simulate(self._burst(admission_policy="degrade", workers=1))
        fast = simulate(self._burst(admission_policy="degrade", workers=4))
        assert fast.served == slow.served  # degrade never drops
        assert np.percentile(fast.latencies_ms, 99) < np.percentile(slow.latencies_ms, 99)

    def test_closed_loop_accounting(self):
        trace = ClosedLoopTrace(clients=6, requests_per_client=4, think_time_s=0.01)
        result = simulate(
            Scenario(trace=trace, admission_policy="shed-oldest", max_queue_depth=3,
                     service=STRESS, seed=2)
        )
        # Every client request resolves (served, shed, or rejected) exactly once:
        # the loop self-throttles, so offered equals the fixed population size.
        assert result.counters.offered == trace.clients * trace.requests_per_client
        assert result.conserved

    def test_single_scenario_rerun_is_bit_identical(self):
        assert rerun_identical(self._burst(deadline_ms=40.0, workers=2))

    def test_validation_mirrors_inference_server(self):
        with pytest.raises(ConfigurationError):
            Scenario(trace=PoissonTrace(), admission_policy="drop-all")
        with pytest.raises(ConfigurationError):
            Scenario(trace=PoissonTrace(), admission_policy="reject", max_queue_depth=None)
        with pytest.raises(ConfigurationError):
            Scenario(trace=PoissonTrace(), workers=0)
        with pytest.raises(ConfigurationError):
            ServiceModel(per_sample_ms=0.0)


class TestSweep:
    def test_grid_order_and_determinism_across_n_jobs(self):
        runner = ScenarioRunner(service=STRESS, slo=SLOSpec(p99_latency_ms=400.0))
        traces = trace_catalogue(duration_s=1.0)
        serial = ScenarioRunner.rows(runner.sweep(traces, seed=4, n_jobs=1))
        assert len(serial) == len(traces) * 2 * 2  # default 2 policies x 2 worker counts
        labels = [row["scenario"] for row in serial]
        assert labels == sorted(labels, key=labels.index)  # stable, documented order
        if process_execution_supported():
            fanned = ScenarioRunner.rows(runner.sweep(traces, seed=4, n_jobs=3))
            assert fanned == serial

    def test_seed_changes_rows(self):
        runner = ScenarioRunner(service=STRESS)
        traces = [PoissonTrace(duration_s=1.0)]
        assert ScenarioRunner.rows(runner.sweep(traces, seed=0)) != ScenarioRunner.rows(
            runner.sweep(traces, seed=1)
        )

    def test_expand_grid_shape(self):
        grid = expand_grid({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6
        assert grid[0] == {"a": 1, "b": "x"} and grid[-1] == {"a": 2, "b": "z"}
        with pytest.raises(ConfigurationError):
            expand_grid({"a": []})


# ------------------------------------------------------------------- hysteresis study
class TestHysteresisStudy:
    def test_damping_reduces_resizes_deterministically(self):
        rows = run_autotuner_hysteresis_study(hysteresis_values=(0.0, 0.2), seed=1)
        undamped, damped = rows
        assert damped["resizes"] < undamped["resizes"]
        assert rows == run_autotuner_hysteresis_study(hysteresis_values=(0.0, 0.2), seed=1)

    def test_zero_hysteresis_reproduces_algorithm2(self):
        from repro.engine.autotuner import AutoTuner

        stream = RandomState(9).child("tuner").generator
        signal = 100.0 + 10.0 * stream.standard_normal(32)
        plain, damped_zero = AutoTuner(), AutoTuner(hysteresis=0.0)
        for value in signal:
            plain.observe(float(value))
            damped_zero.observe(float(value))
        assert plain.history == damped_zero.history

    def test_negative_hysteresis_rejected(self):
        from repro.engine.autotuner import AutoTuner

        with pytest.raises(ConfigurationError):
            AutoTuner(hysteresis=-0.1)


# ------------------------------------------------------------------------ live replays
def _serve_model():
    return create_model(
        "mlp", rng=RandomState(3), input_dim=8, num_classes=4, hidden_sizes=(16,)
    )


class TestLiveReplay:
    def test_conservation_against_real_server(self):
        trace = PoissonTrace(rate_rps=150.0, duration_s=0.4)
        runner = ScenarioRunner()
        images = RandomState(1).normal(size=(1, 8)).astype(np.float32)
        server = InferenceServer(
            _serve_model(),
            max_batch_size=8,
            max_latency_ms=1.0,
            admission_policy="reject",
            max_queue_depth=16,
        )
        with server:
            row = runner.replay_live(
                trace, server, images_for=lambda samples: images, seed=7
            )
        assert row["offered"] == trace.offered(7)
        assert row["accepted"] + row["rejected"] == row["offered"]
        assert row["served"] + row["refused"] == row["offered"]

    def test_closed_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunner().replay_live(
                ClosedLoopTrace(), InferenceServer(_serve_model()), lambda n: None
            )


_DATASET = {"num_train": 128, "num_test": 64}


@needs_fork
class TestFaultInjection:
    def test_worker_killed_mid_scenario_accounting_survives(self, monkeypatch):
        """Kill one EvaluatorPool worker mid-replay under the shm sanitizer.

        The replay must finish with every request resolved exactly once — the
        dead worker's claimed slot is reclaimed (dead-holder path), the
        service raises ``SchedulingError`` listing the lost tickets, and the
        runner resubmits them against the respawned pool.
        """
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        trainer = CrossbowTrainer(
            CrossbowConfig(
                model_name="mlp",
                dataset_name="blobs",
                num_gpus=1,
                batch_size=16,
                replicas_per_gpu=2,
                max_epochs=1,
                dataset_overrides=dict(_DATASET),
                seed=7,
            )
        )
        service = EvaluationService(execution="process", workers=2)
        service.bind(trainer.initial_model, trainer.pipeline)
        base = trainer.initial_model.parameter_vector()
        rng = RandomState(23)
        checkpoints = [
            Checkpoint(
                parameters=base
                + rng.normal(scale=0.05, size=base.shape).astype(np.float32),
                buffers={},
                epoch=index,
            )
            for index in range(8)
        ]
        trace = ClosedLoopTrace(clients=2, requests_per_client=4)  # 8 requests
        killed = {"done": False}

        def kill_one_worker(index: int) -> None:
            # Strike midway, after the pool is warm and holds claimed slots.
            if index == 4 and not killed["done"] and service._pool is not None:
                victim = service._pool._processes()[0]
                victim.terminate()
                victim.join(timeout=10.0)
                killed["done"] = True

        try:
            row = ScenarioRunner().replay_evaluation(
                trace,
                service,
                checkpoint_for=lambda index: checkpoints[index],
                seed=0,
                on_submit=kill_one_worker,
            )
        finally:
            service.close()
            trainer.close()
        assert killed["done"], "the fault was never injected"
        assert row["offered"] == 8
        assert row["resolved"] == 8  # every request resolved exactly once
        assert row["recoveries"] >= 1 and row["resubmitted"] >= 1
        assert sorted(row["accuracies"]) == list(range(8))

    def test_no_fault_no_recovery(self):
        """Same replay, nobody killed: zero recoveries, all resolved."""
        trainer = CrossbowTrainer(
            CrossbowConfig(
                model_name="mlp",
                dataset_name="blobs",
                num_gpus=1,
                batch_size=16,
                replicas_per_gpu=2,
                max_epochs=1,
                dataset_overrides=dict(_DATASET),
                seed=7,
            )
        )
        service = EvaluationService(execution="process", workers=2)
        service.bind(trainer.initial_model, trainer.pipeline)
        base = trainer.initial_model.parameter_vector()
        checkpoints = [
            Checkpoint(parameters=base.copy(), buffers={}, epoch=index) for index in range(4)
        ]
        trace = ClosedLoopTrace(clients=2, requests_per_client=2)
        try:
            row = ScenarioRunner().replay_evaluation(
                trace, service, checkpoint_for=lambda index: checkpoints[index], seed=0
            )
        finally:
            service.close()
            trainer.close()
        assert row == {
            "trace": "closedloop",
            "offered": 4,
            "resolved": 4,
            "resubmitted": 0,
            "recoveries": 0,
            "accuracies": row["accuracies"],
        }
        assert len(row["accuracies"]) == 4
