"""The experiment harness: workloads, reporting and (cheap) figure runners."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    WORKLOADS,
    format_table,
    run_ablation_memory_plan,
    run_ablation_scheduler,
    run_fig2_hardware_efficiency,
    run_fig17_sync_overhead,
    run_table1_model_inventory,
    save_rows,
    workload_for_model,
)
from repro.experiments.figures import run_fig3_statistical_efficiency
from repro.experiments.workloads import Workload


class TestWorkloads:
    def test_quick_profile_covers_all_four_benchmarks(self):
        for model in ("lenet", "resnet32", "vgg16", "resnet50"):
            workload = workload_for_model(model)
            assert workload.model_name.endswith("-scaled")
            assert 0 < workload.target_accuracy <= 1

    def test_paper_profile_uses_full_models(self):
        workload = workload_for_model("resnet32", profile="paper")
        assert workload.model_name == "resnet32"
        assert workload.batch_size == 64

    def test_unknown_profile_or_model_raises(self):
        with pytest.raises(ConfigurationError):
            workload_for_model("resnet32", profile="huge")
        with pytest.raises(ConfigurationError):
            workload_for_model("alexnet")

    def test_scaled_down_copy(self):
        workload = WORKLOADS["resnet32"].scaled_down(num_train=64, num_test=32, max_epochs=2)
        assert workload.dataset_overrides["num_train"] == 64
        assert workload.max_epochs == 2
        assert isinstance(workload, Workload)
        # The original is unchanged (frozen dataclass semantics).
        assert WORKLOADS["resnet32"].max_epochs != 2


class TestReporting:
    def test_format_table_alignment_and_missing_values(self):
        rows = [
            {"name": "a", "value": 1.23456, "other": None},
            {"name": "bb", "value": 7, "other": "x"},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert "-" in lines[1]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_save_rows_csv(self, tmp_path: Path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = save_rows(rows, tmp_path / "sub" / "table.csv")
        assert path.exists()
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3


class TestHardwareOnlyRunners:
    """Runners that only exercise the simulator: cheap enough to test directly."""

    def test_table1_inventory_rows(self):
        rows = run_table1_model_inventory()
        assert len(rows) == 4
        by_model = {row["model"]: row for row in rows}
        assert by_model["resnet50"]["model_size_mb"] == pytest.approx(97.49, abs=3.0)
        assert by_model["resnet32"]["num_operators"] > by_model["vgg16"]["num_operators"]

    def test_fig2_fixed_aggregate_batch_scales_sublinearly(self):
        rows = run_fig2_hardware_efficiency(
            gpu_counts=(1, 8), aggregate_batch_sizes=(64, 1024), iterations=20
        )
        by_key = {(r["aggregate_batch"], r["gpus"]): r for r in rows}
        assert by_key[(64, 8)]["speedup_vs_1gpu"] < 4.0
        assert by_key[(1024, 8)]["speedup_vs_1gpu"] > 4.0

    def test_fig17_synchronisation_overhead_is_modest(self):
        rows = run_fig17_sync_overhead(replica_counts=(1,), periods=(1, None), iterations=30)
        by_tau = {row["tau"]: row["throughput_img_s"] for row in rows}
        assert by_tau["inf"] >= by_tau[1]
        # §5.6: removing synchronisation entirely buys only a modest improvement.
        assert by_tau["inf"] < 1.6 * by_tau[1]

    def test_scheduler_ablation_prefers_fcfs_overlap(self):
        rows = run_ablation_scheduler(iterations=50)
        by_policy = {row["policy"]: row["throughput_img_s"] for row in rows}
        assert by_policy["fcfs-overlap"] > by_policy["lockstep"]

    def test_memory_plan_ablation_shows_reuse_savings(self):
        rows = run_ablation_memory_plan(learners=(2,))
        by_plan = {(row["plan"], row["learners"]): row for row in rows}
        assert by_plan[("offline-reuse", 1)]["peak_mb"] < by_plan[("naive", 1)]["peak_mb"]
        shared = by_plan[("online-shared", 2)]
        assert shared["peak_mb"] < shared["vs_replicated_naive_mb"]


class TestTrainingRunnerSmoke:
    """One training-based runner executed with a minimal budget."""

    def test_fig3_runner_produces_rows(self):
        workload = WORKLOADS["mlp"].scaled_down(num_train=128, num_test=64, max_epochs=2)
        rows = run_fig3_statistical_efficiency(
            batch_sizes=(16, 64), target_accuracy=0.9, workload=workload, max_epochs=2
        )
        assert len(rows) == 2
        assert {row["batch_size"] for row in rows} == {16, 64}
        for row in rows:
            assert row["best_accuracy"] >= 0.0


class TestRecordBenchSummary:
    """The machine-readable per-commit benchmark record and its atomic writes."""

    def test_calls_merge_by_entry_name(self, tmp_path):
        from repro.experiments import record_bench_summary

        path = tmp_path / "BENCH_summary.json"
        record_bench_summary(path, "alpha", [{"throughput": 10.0}])
        record_bench_summary(path, "beta", [{"throughput": 20.0}])
        record_bench_summary(path, "alpha", [{"throughput": 11.0}])  # overwrite
        import json

        summary = json.loads(path.read_text())
        assert summary["entries"]["alpha"] == [{"throughput": 11.0}]
        assert summary["entries"]["beta"] == [{"throughput": 20.0}]
        assert summary["environment"]["python"]

    def test_corrupt_summary_is_rebuilt(self, tmp_path):
        from repro.experiments import record_bench_summary

        path = tmp_path / "BENCH_summary.json"
        path.write_text('{"entries": {"old": ')  # torn write from a pre-fix world
        record_bench_summary(path, "fresh", [{"iter_per_s": 1.5}])
        import json

        assert "fresh" in json.loads(path.read_text())["entries"]

    def test_no_temp_file_left_behind(self, tmp_path):
        from repro.experiments import record_bench_summary

        path = tmp_path / "BENCH_summary.json"
        record_bench_summary(path, "only", [{"x_per_s": 1.0}])
        # The atomic-write temp file is gone; what remains is the summary and
        # the telemetry store the rows were dual-written into.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "BENCH_summary.json",
            "telemetry.sqlite",
        ]

    def test_parallel_writers_never_tear_the_file(self, tmp_path):
        """Concurrent merges (parallel benchmark jobs) leave a parseable file
        at every instant — the bug this guards against was a reader observing
        a partially written document."""
        import json
        import multiprocessing

        from repro.engine import process_execution_supported
        from repro.experiments import record_bench_summary

        if not process_execution_supported():
            import pytest

            pytest.skip("requires the fork start method")
        path = tmp_path / "BENCH_summary.json"
        record_bench_summary(path, "seed", [{"throughput": 1.0}])

        def writer(name: str) -> None:
            for i in range(25):
                record_bench_summary(path, name, [{"throughput": float(i)}])

        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=writer, args=(f"bench-{j}",), daemon=True)
            for j in range(4)
        ]
        for worker in workers:
            worker.start()
        parses = 0
        while any(worker.is_alive() for worker in workers):
            summary = json.loads(path.read_text())  # must never raise
            assert "entries" in summary
            parses += 1
        for worker in workers:
            worker.join(timeout=30.0)
            assert worker.exitcode == 0
        assert parses > 0
        assert json.loads(path.read_text())["entries"]
