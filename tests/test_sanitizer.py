"""Tests for the ShmSanitizer dynamic shared-memory race detector.

Covers the three layers separately: the stamp-map unit semantics (overlap
detection, dead-holder reclamation), the :class:`SharedMatrix` wiring under
``REPRO_SHM_SANITIZE=1`` (guard registration and view resolution), and the
end-to-end guarantees — an injected overlapping window is detected inside
the evaluator pool's submit path, while a full pipelined training run under
the sanitizer stays bit-identical to the unsanitized run.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    NULL_SANITIZER,
    ShmSanitizer,
    create_sanitizer,
    guard_for,
    register_guard,
    sanitize_enabled,
)
from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported
from repro.engine.executor import SharedMatrix
from repro.errors import ShmRaceError
from repro.serve import Checkpoint, EvaluatorPool

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)


def _config(**overrides):
    defaults = dict(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=2,
        max_epochs=2,
        dataset_overrides={"num_train": 256, "num_test": 64},
        seed=7,
        execution="process",
    )
    defaults.update(overrides)
    return CrossbowConfig(**defaults)


def _final_state(config):
    trainer = CrossbowTrainer(config)
    try:
        trainer.train()
        return {
            "center": trainer.central_model_vector(),
            "weights": trainer.replica_bank.active_matrix().copy(),
            "accuracy": trainer.evaluate(),
        }
    finally:
        trainer.close()


# ----------------------------------------------------------------- stamp-map unit
class TestSanitizerUnit:
    def test_write_write_overlap_raises(self):
        san = ShmSanitizer(2, label="unit")
        try:
            san.begin_write(0)
            with pytest.raises(ShmRaceError, match="overlapping writers"):
                san.begin_write(0)
            san.end_write(0)
            # Disjoint regions never conflict.
            with san.write(0), san.write(1):
                pass
        finally:
            san.close()

    def test_write_during_read_raises(self):
        san = ShmSanitizer(1, label="unit")
        try:
            san.begin_read(0)
            with pytest.raises(ShmRaceError, match="write-during-read"):
                san.begin_write(0)
            san.end_read(0)
            with san.write(0):
                pass
        finally:
            san.close()

    def test_same_process_read_inside_own_write_window_allowed(self):
        # A single thread of control cannot race itself; step_matrix reads
        # the weights it is stepping in place.
        san = ShmSanitizer(1, label="unit")
        try:
            with san.write(0):
                with san.read(0):
                    pass
        finally:
            san.close()

    def test_windows_close_cleanly(self):
        san = ShmSanitizer(3, label="unit")
        try:
            with san.write_rows(3):
                pass
            with san.read_rows([0, 2]):
                pass
            stamps = san.snapshot()
            assert (stamps[:, 0] == 0).all()  # no writer pids
            assert (stamps[:, 1] == 0).all()  # no reader counts
            assert stamps[:, 3].sum() > 0  # epochs recorded the windows
        finally:
            san.close()

    def test_failed_multi_row_acquire_releases_acquired_rows(self):
        san = ShmSanitizer(3, label="unit")
        try:
            san.begin_write(2)
            with pytest.raises(ShmRaceError):
                with san.write_rows(3):  # rows 0,1 acquired, row 2 conflicts
                    pass
            san.end_write(2)
            with san.write_rows(3):  # nothing leaked
                pass
        finally:
            san.close()

    def test_disabled_env_yields_null_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert create_sanitizer(8) is NULL_SANITIZER
        with NULL_SANITIZER.write(0), NULL_SANITIZER.read(0):
            pass  # free no-ops

    def test_guard_for_unregistered_array_is_null(self):
        assert guard_for(np.zeros((2, 2), dtype=np.float32)) is NULL_SANITIZER
        assert guard_for(None) is NULL_SANITIZER

    def test_guard_for_resolves_through_views(self):
        arr = np.zeros((4, 3), dtype=np.float32)
        san = ShmSanitizer(4, label="unit")
        try:
            register_guard(arr, san)
            assert guard_for(arr) is san
            assert guard_for(arr[1]) is san
            assert guard_for(arr[:2, 1:]) is san
        finally:
            san.close()


# ------------------------------------------------------------------ cross-process
@needs_fork
class TestCrossProcess:
    def test_cross_fork_write_write_race_detected(self):
        san = ShmSanitizer(1, label="xproc")
        ctx = multiprocessing.get_context("fork")
        outcomes = ctx.Queue()

        def child():
            try:
                san.begin_write(0)
                outcomes.put("no-race")
            except ShmRaceError:
                outcomes.put("race")

        try:
            san.begin_write(0)
            worker = ctx.Process(target=child)
            worker.start()
            worker.join(timeout=10.0)
            assert outcomes.get(timeout=5.0) == "race"
            san.end_write(0)
        finally:
            san.close()

    def test_dead_holders_window_is_reclaimed(self):
        # A process that exits inside a window can never close it; the next
        # acquirer must reclaim the stale stamp instead of reporting a race.
        san = ShmSanitizer(1, label="xproc")
        ctx = multiprocessing.get_context("fork")

        def leaky_child():
            san.begin_write(0)  # exits without end_write

        try:
            worker = ctx.Process(target=leaky_child)
            worker.start()
            worker.join(timeout=10.0)
            assert san.snapshot()[0, 0] != 0  # the leak is visible...
            with san.write(0):  # ...and silently reclaimed
                pass
        finally:
            san.close()

    def test_dead_readers_window_is_reclaimed(self):
        san = ShmSanitizer(1, label="xproc")
        ctx = multiprocessing.get_context("fork")

        def leaky_reader():
            san.begin_read(0)  # exits without end_read

        try:
            worker = ctx.Process(target=leaky_reader)
            worker.start()
            worker.join(timeout=10.0)
            with san.write(0):
                pass
        finally:
            san.close()


# --------------------------------------------------------------- matrix wiring
class TestSharedMatrixWiring:
    def test_matrix_registers_guard_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        matrix = SharedMatrix(3, 4)
        try:
            assert matrix.sanitizer.enabled
            assert guard_for(matrix.array) is matrix.sanitizer
            assert guard_for(matrix.array[1]) is matrix.sanitizer
        finally:
            matrix.close()

    def test_matrix_unguarded_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_SANITIZE", raising=False)
        matrix = SharedMatrix(2, 2)
        try:
            assert matrix.sanitizer is NULL_SANITIZER
            assert guard_for(matrix.array) is NULL_SANITIZER
        finally:
            matrix.close()


# ------------------------------------------------------------------- end to end
@needs_fork
class TestEndToEnd:
    def test_injected_overlapping_window_trips_pool_submit(self, monkeypatch):
        """A deliberately held read window on slot 0 must make the parent's
        next publish fail with ShmRaceError — and releasing it must leave the
        pool fully usable (the reservation is rolled back)."""
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        trainer = CrossbowTrainer(_config(execution="serial", max_epochs=1))
        try:
            checkpoint = Checkpoint.from_model(trainer.initial_model)
            with EvaluatorPool(trainer.initial_model, trainer.pipeline, workers=2) as pool:
                pool._params.sanitizer.begin_read(0)  # the injected race
                with pytest.raises(ShmRaceError, match="write-during-read"):
                    pool.submit(0, checkpoint)
                assert pool.in_flight == 0
                pool._params.sanitizer.end_read(0)
                pool.submit(0, checkpoint)
                resolved = pool.drain()
                assert [ticket for ticket, _ in resolved] == [0]
        finally:
            trainer.close()

    def test_pipelined_training_bit_identical_under_sanitizer(self, monkeypatch):
        """REPRO_SHM_SANITIZE=1 is observability, not behaviour: a pipelined
        multi-process run must be bit-identical and race-clean under it."""
        monkeypatch.delenv("REPRO_SHM_SANITIZE", raising=False)
        plain = _final_state(_config(pipeline_depth=1))
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        sanitized = _final_state(_config(pipeline_depth=1))
        np.testing.assert_array_equal(plain["weights"], sanitized["weights"])
        np.testing.assert_array_equal(plain["center"], sanitized["center"])
        assert plain["accuracy"] == sanitized["accuracy"]

    def test_depth0_process_run_race_clean_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        state = _final_state(_config(pipeline_depth=0))
        assert np.isfinite(state["accuracy"])
