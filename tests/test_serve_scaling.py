"""Tests for the multi-process inference plane and its telemetry-driven autoscaler.

Four layers, mirroring ``repro.serve.scaling``:

* ``ServingAutoTuner`` — the Algorithm-2 machinery running setpoint control:
  dead band, shrink-side hysteresis, bounds, signal→pressure arithmetic;
* ``load_signal`` — the pivot query the scaler feeds on, pinned against a
  synthetic history;
* ``InferencePool`` — slot-ring round trips, in-place resize (no respawn:
  the worker PIDs never change), validation;
* the pooled server end to end — fixed-seed single-worker bit-identity with
  the in-process ``InferenceServer``, counter conservation and exactly-once
  delivery across mid-stream resizes, a worker killed mid-scale under
  ``REPRO_SHM_SANITIZE=1``, and the closed control loop: a flash-crowd
  replay forces a grow and the slow-drain tail forces a shrink, with the
  load signal read from ``repro.telemetry.queries`` rather than in-process
  state, and SLO verdicts flipping from fail to pass once the pool scales.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import process_execution_supported
from repro.engine.autotuner import AutoTunerDecision
from repro.errors import ConfigurationError
from repro.models import create_model
from repro.nn.module import Module
from repro.scenarios import FlashCrowdTrace, ScenarioRunner, SlowDrainTrace, SLOSpec
from repro.serve import InferenceServer, PooledInferenceServer, ServeCounters
from repro.serve.scaling import InferencePool, ServingAutoTuner, autoscale_step
from repro.telemetry.queries import load_signal
from repro.telemetry.recorder import Recorder, get_recorder, set_recorder
from repro.telemetry.store import TelemetryStore
from repro.utils.rng import RandomState

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)

INPUT_DIM = 8


def _model():
    return create_model(
        "mlp", rng=RandomState(3), input_dim=INPUT_DIM, num_classes=4, hidden_sizes=(16,)
    )


class _SlowModel(Module):
    """A model whose forward sleeps: load builds queues even on a 1-core host."""

    def __init__(self, inner: Module, delay_s: float) -> None:
        super().__init__()
        self.inner = inner
        self.delay_s = delay_s

    def forward(self, x):
        time.sleep(self.delay_s)
        return self.inner(x)


@pytest.fixture
def recorder():
    """Install an enabled in-memory global recorder, restoring the old one after."""
    previous = get_recorder()
    installed = set_recorder(Recorder(enabled=True, run_id="serve-scaling-test"))
    yield installed
    set_recorder(previous)


# ------------------------------------------------------------------- serving tuner
class TestServingAutoTuner:
    def test_dead_band_keeps_grows_shrinks(self):
        tuner = ServingAutoTuner(learners_per_gpu=2, min_learners=1, max_learners=4)
        assert tuner.observe(1.0) is AutoTunerDecision.KEEP
        assert tuner.observe(1.04) is AutoTunerDecision.KEEP  # inside tolerance=0.05
        assert tuner.observe(2.0) is AutoTunerDecision.ADD_LEARNER
        assert tuner.workers == 3
        assert tuner.observe(0.2) is AutoTunerDecision.REMOVE_LEARNER
        assert tuner.workers == 2
        assert tuner.grow_count == 1 and tuner.shrink_count == 1

    def test_hysteresis_damps_the_shrink_side_only(self):
        damped = ServingAutoTuner(learners_per_gpu=2, hysteresis=0.3)
        assert damped.observe(0.8) is AutoTunerDecision.KEEP  # 0.8 > 1 - 0.35
        assert damped.observe(0.6) is AutoTunerDecision.REMOVE_LEARNER
        eager = ServingAutoTuner(learners_per_gpu=2, hysteresis=0.0)
        assert eager.observe(0.8) is AutoTunerDecision.REMOVE_LEARNER

    def test_bounds_are_respected(self):
        tuner = ServingAutoTuner(learners_per_gpu=2, min_learners=2, max_learners=2)
        assert tuner.observe(100.0) is AutoTunerDecision.KEEP
        assert tuner.observe(0.0) is AutoTunerDecision.KEEP
        assert tuner.resize_count == 0

    def test_disabled_tuner_never_moves(self):
        tuner = ServingAutoTuner(learners_per_gpu=3, enabled=False)
        assert tuner.observe(100.0) is AutoTunerDecision.KEEP
        assert tuner.workers == 3 and tuner.history == []

    def test_pressure_is_the_binding_ratio(self):
        tuner = ServingAutoTuner(target_queue_depth=4.0, target_miss_rate=0.01)
        depth_bound = {"queue_depth_p99": 8.0, "deadline_miss_rate": 0.0}
        miss_bound = {"queue_depth_p99": 0.0, "deadline_miss_rate": 0.05}
        assert tuner.pressure_from(depth_bound) == pytest.approx(2.0)
        assert tuner.pressure_from(miss_bound) == pytest.approx(5.0)
        assert tuner.observe_signal(depth_bound) is AutoTunerDecision.ADD_LEARNER

    def test_history_and_convergence_machinery_is_inherited(self):
        tuner = ServingAutoTuner(learners_per_gpu=1, max_learners=8)
        for pressure in (3.0, 1.0, 1.0, 1.0):
            tuner.observe(pressure)
        assert tuner.history[0] is AutoTunerDecision.ADD_LEARNER
        assert tuner.converged(stable_observations=3)

    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            ServingAutoTuner(target_queue_depth=0.0)
        with pytest.raises(ConfigurationError):
            ServingAutoTuner(target_miss_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ServingAutoTuner(hysteresis=-0.1)  # inherited check still runs


# ------------------------------------------------------------------- load signal
class TestLoadSignal:
    def test_pivots_snapshot_counters_per_run(self, tmp_path):
        with TelemetryStore(tmp_path / "signal.sqlite") as store:
            history = [("hot", 12.0, 100, 9), ("cool", 2.0, 50, 0)]
            for n, (run_id, p99, accepted, missed) in enumerate(history):
                store.record_run(run_id, started_at=1000.0 + n)
                store.insert_events(
                    run_id,
                    pid=1,
                    events=[
                        (0, "counter", "serve.queue_depth_p50", p99 / 2, 0.0, {}),
                        (1, "counter", "serve.queue_depth_p99", p99, 1.0, {}),
                        (2, "counter", "serve.accepted", float(accepted), 2.0, {}),
                        (3, "counter", "serve.deadline_missed", float(missed), 3.0, {}),
                    ],
                )
            # a run with no serving counters stays out of the signal entirely
            store.record_run("training-only", started_at=1002.0)
            store.insert_events(
                "training-only", pid=2, events=[(0, "counter", "sync.flip", 1.0, 0.0, {})]
            )
            rows = load_signal(store.connection(), last_n=2)
        assert rows == [
            {
                "run_id": "hot",
                "queue_depth_p50": 6.0,
                "queue_depth_p99": 12.0,
                "accepted": 100,
                "deadline_missed": 9,
                "deadline_miss_rate": 0.09,
                "rolling_queue_depth_p99": 12.0,
            },
            {
                "run_id": "cool",
                "queue_depth_p50": 1.0,
                "queue_depth_p99": 2.0,
                "accepted": 50,
                "deadline_missed": 0,
                "deadline_miss_rate": 0.0,
                "rolling_queue_depth_p99": 7.0,
            },
        ]

    def test_zero_accepted_reports_zero_miss_rate(self, tmp_path):
        with TelemetryStore(tmp_path / "empty.sqlite") as store:
            store.record_run("idle", started_at=1.0)
            store.insert_events(
                "idle",
                pid=1,
                events=[
                    (0, "counter", "serve.queue_depth_p99", 0.0, 0.0, {}),
                    (1, "counter", "serve.accepted", 0.0, 1.0, {}),
                ],
            )
            rows = load_signal(store.connection())
        assert rows[0]["deadline_miss_rate"] == 0.0
        assert rows[0]["deadline_missed"] == 0  # absent counter coalesces to zero

    def test_window_validation(self, tmp_path):
        with TelemetryStore(tmp_path / "w.sqlite") as store:
            with pytest.raises(ValueError, match="last_n"):
                load_signal(store.connection(), last_n=0)


# ------------------------------------------------------------------- inference pool
@needs_fork
class TestInferencePool:
    def test_roundtrip_matches_inline_forward(self):
        model = _model()
        rng = np.random.RandomState(7)
        batches = {t: rng.randn(3, INPUT_DIM).astype(np.float32) for t in range(6)}
        with InferencePool(model, sample_shape=(INPUT_DIM,), workers=2) as pool:
            for ticket, batch in batches.items():
                pool.publish(ticket, batch)
            got = {}
            while pool.in_flight:
                for ticket, logits, error in pool.collect(block=True):
                    assert error is None
                    got[ticket] = logits
        from repro.tensor.tensor import Tensor, no_grad

        reference = model.clone()
        reference.eval()
        with no_grad():
            for ticket, batch in batches.items():
                assert np.array_equal(got[ticket], reference(Tensor(batch)).data)

    def test_resize_in_place_never_respawns(self):
        model = _model()
        rng = np.random.RandomState(11)
        with InferencePool(model, sample_shape=(INPUT_DIM,), workers=1, max_workers=4) as pool:
            pids = sorted(p.pid for p in pool._processes())
            assert pool.active_workers == 1 and pool.num_workers == 4
            results = 0
            for round_no, target in enumerate((4, 2, 1, 3)):
                assert pool.resize(target) == target
                for n in range(6):
                    pool.publish(round_no * 10 + n, rng.randn(2, INPUT_DIM).astype(np.float32))
                while pool.in_flight:
                    for _, logits, error in pool.collect(block=True):
                        assert error is None and logits is not None
                        results += 1
                assert sorted(p.pid for p in pool._processes()) == pids  # no respawn
            assert results == 24

    def test_grow_cancels_pending_parks(self):
        model = _model()
        with InferencePool(model, sample_shape=(INPUT_DIM,), workers=4, max_workers=4) as pool:
            # shrink-then-grow before any worker had a chance to park: the
            # pending parks are cancelled and the ring keeps its full capacity
            pool.resize(1)
            pool.resize(4)
            rng = np.random.RandomState(3)
            for ticket in range(8):
                pool.publish(ticket, rng.randn(1, INPUT_DIM).astype(np.float32))
            seen = set()
            while pool.in_flight:
                for ticket, _, error in pool.collect(block=True):
                    assert error is None
                    seen.add(ticket)
            assert seen == set(range(8))

    def test_validation(self):
        model = _model()
        with pytest.raises(ConfigurationError):
            InferencePool(model, sample_shape=(INPUT_DIM,), workers=0)
        with pytest.raises(ConfigurationError):
            InferencePool(model, sample_shape=(INPUT_DIM,), workers=3, max_workers=2)
        with InferencePool(model, sample_shape=(INPUT_DIM,), workers=1, max_workers=2) as pool:
            with pytest.raises(ConfigurationError):
                pool.resize(0)
            with pytest.raises(ConfigurationError):
                pool.resize(3)  # max_workers is fixed at construction
            with pytest.raises(ConfigurationError):
                pool.publish(0, np.zeros((1, INPUT_DIM + 1), dtype=np.float32))
            with pytest.raises(ConfigurationError):
                pool.publish(0, np.zeros((pool.max_batch_samples + 1, INPUT_DIM), np.float32))

    def test_worker_error_is_returned_not_raised(self):
        model = _model()
        with InferencePool(
            model, sample_shape=(INPUT_DIM,), workers=1, max_batch_samples=4
        ) as pool:
            batch = np.full((2, INPUT_DIM), np.nan, dtype=np.float32)
            batch[0, 0] = np.inf
            pool.publish(0, batch)  # NaNs forward fine: no error expected
            (ticket, logits, error) = pool.collect(block=True)[0]
            assert ticket == 0 and error is None and logits is not None


# ------------------------------------------------------------------- pooled server
@needs_fork
class TestPooledInferenceServer:
    def test_single_worker_bit_identical_to_in_process(self):
        model = _model()
        rng = np.random.RandomState(5)
        requests = [rng.randn(2, INPUT_DIM).astype(np.float32) for _ in range(12)]
        reference = InferenceServer(model, max_batch_size=1, max_latency_ms=0.1)
        reference.start()
        expected = [reference.predict(x) for x in requests]
        reference.stop()
        with PooledInferenceServer(
            model, sample_shape=(INPUT_DIM,), workers=1, max_batch_size=1, max_latency_ms=0.1
        ) as server:
            actual = [server.predict(x) for x in requests]
            server.stop()
        assert all(np.array_equal(a, b) for a, b in zip(expected, actual))
        assert server.stats.requests == len(requests)

    def test_conservation_and_exactly_once_across_resizes(self):
        model = _model()
        rng = np.random.RandomState(13)
        with PooledInferenceServer(
            model,
            sample_shape=(INPUT_DIM,),
            workers=2,
            max_workers=4,
            max_batch_size=8,
            max_latency_ms=0.5,
        ) as server:
            futures = []
            for index in range(48):
                futures.append(server.submit(rng.randn(1, INPUT_DIM).astype(np.float32)))
                if index == 12:
                    assert server.resize_workers(4) == 4
                if index == 30:
                    assert server.resize_workers(1) == 1
            results = [future.result(timeout=30.0) for future in futures]
            server.stop()
        assert len(results) == 48 and all(r.shape == (1, 4) for r in results)
        counters = server.counters
        assert counters.offered == counters.accepted + counters.rejected == 48
        assert counters.accepted == (
            server.stats.requests + counters.shed + counters.deadline_missed
        )
        assert server._inflight == {}  # every ticket resolved exactly once
        assert server.recoveries == 0

    def test_worker_killed_mid_scale_recovers_exactly_once(self, monkeypatch):
        """Kill the whole pool mid-scale under the shm sanitizer.

        The serving loop must notice the dead workers, rebuild the pool at the
        post-resize width, re-publish the unresolved tickets and still resolve
        every future exactly once.
        """
        monkeypatch.setenv("REPRO_SHM_SANITIZE", "1")
        model = _model()
        rng = np.random.RandomState(17)
        with PooledInferenceServer(
            model,
            sample_shape=(INPUT_DIM,),
            workers=2,
            max_workers=3,
            max_batch_size=4,
            max_latency_ms=0.5,
        ) as server:
            futures = [
                server.submit(rng.randn(1, INPUT_DIM).astype(np.float32)) for _ in range(6)
            ]
            for victim in server._pool._processes():
                victim.terminate()
                victim.join(timeout=10.0)
            assert server.resize_workers(3) == 3  # mid-scale: resize the dead pool
            futures += [
                server.submit(rng.randn(1, INPUT_DIM).astype(np.float32)) for _ in range(6)
            ]
            results = [future.result(timeout=60.0) for future in futures]
            server.stop()
        assert len(results) == 12 and all(r.shape == (1, 4) for r in results)
        assert server.recoveries >= 1
        assert server.workers == 3  # the rebuilt pool kept the resized width
        assert server._inflight == {}
        counters = server.counters
        assert counters.offered == counters.accepted + counters.rejected == 12
        assert counters.accepted == (
            server.stats.requests + counters.shed + counters.deadline_missed
        )

    def test_oversized_single_request_falls_back_in_process(self):
        model = _model()
        with PooledInferenceServer(
            model, sample_shape=(INPUT_DIM,), workers=1, max_batch_size=2
        ) as server:
            big = np.random.RandomState(19).randn(5, INPUT_DIM).astype(np.float32)
            result = server.predict(big)
            server.stop()
        assert result.shape == (5, 4)


# -------------------------------------------------------- the closed control loop
@needs_fork
class TestAutoscalingLoop:
    def test_flash_crowd_grows_slow_drain_shrinks(self, recorder, tmp_path):
        """The full signal path: replay → counters snapshot → store →
        ``load_signal`` → tuner → in-place pool resize."""
        # ~10 ms per batch of <=2: the 250 rps burst genuinely exceeds one
        # worker's capacity (queues build), while the drain tail does not
        model = _SlowModel(_model(), delay_s=0.01)
        runner = ScenarioRunner()
        images = np.random.RandomState(1).normal(size=(1, INPUT_DIM)).astype(np.float32)
        tuner = ServingAutoTuner(
            learners_per_gpu=1,
            min_learners=1,
            max_learners=2,
            target_queue_depth=4.0,
            target_miss_rate=0.05,
        )
        with TelemetryStore(tmp_path / "loop.sqlite") as store, PooledInferenceServer(
            model,
            sample_shape=(INPUT_DIM,),
            workers=1,
            max_workers=2,
            max_batch_size=2,
            max_latency_ms=1.0,
        ) as server:
            conn = store.connection()
            flash = FlashCrowdTrace(
                duration_s=1.2,
                base_rate=20.0,
                burst_rate=250.0,
                burst_start_s=0.2,
                burst_duration_s=0.5,
            )
            flash_row = runner.replay_live(
                flash, server, images_for=lambda samples: images, seed=7
            )
            server.stop()  # snapshots ServeCounters into the recorder
            store.drain(recorder, run_id="flash-a")
            assert autoscale_step(server, tuner, conn) is AutoTunerDecision.ADD_LEARNER
            assert server.workers == 2 and tuner.workers == 2

            server.counters = ServeCounters()  # fresh observation window
            drain = SlowDrainTrace(duration_s=1.0, start_rate=10.0, end_rate=1.0)
            server.start()
            drain_row = runner.replay_live(
                drain, server, images_for=lambda samples: images, seed=7
            )
            server.stop()
            store.drain(recorder, run_id="drain-b")
            assert autoscale_step(server, tuner, conn) is AutoTunerDecision.REMOVE_LEARNER
            assert server.workers == 1 and tuner.workers == 1

            rows = load_signal(conn)
        assert [row["run_id"] for row in rows] == ["flash-a", "drain-b"]
        assert rows[0]["queue_depth_p99"] > rows[1]["queue_depth_p99"]
        assert tuner.history == [
            AutoTunerDecision.ADD_LEARNER,
            AutoTunerDecision.REMOVE_LEARNER,
        ]
        # conservation held through both replays (replay_live asserts it too)
        for row in (flash_row, drain_row):
            assert row["served"] + row["refused"] == row["offered"]

    def test_autoscale_step_keeps_on_empty_store(self, tmp_path):
        with TelemetryStore(tmp_path / "empty.sqlite") as store, PooledInferenceServer(
            _model(), sample_shape=(INPUT_DIM,), workers=1
        ) as server:
            tuner = ServingAutoTuner()
            decision = autoscale_step(server, tuner, store.connection())
        assert decision is AutoTunerDecision.KEEP and server.workers == 1

    def test_slo_verdict_flips_after_scaling(self):
        """Scaling is visible at the SLO layer: the same flash crowd fails p99
        with one worker and passes with four (sleep-bound, so the win does not
        need four physical cores)."""
        model = _SlowModel(_model(), delay_s=0.015)
        images = np.random.RandomState(1).normal(size=(1, INPUT_DIM)).astype(np.float32)
        slo = SLOSpec(name="latency", p99_latency_ms=450.0)
        runner = ScenarioRunner(slo=slo)
        trace = FlashCrowdTrace(
            duration_s=1.0,
            base_rate=10.0,
            burst_rate=120.0,
            burst_start_s=0.2,
            burst_duration_s=0.5,
        )
        with PooledInferenceServer(
            model,
            sample_shape=(INPUT_DIM,),
            workers=1,
            max_workers=4,
            max_batch_size=1,  # no coalescing: capacity comes from workers alone
            max_latency_ms=0.5,
        ) as server:
            overloaded = runner.replay_live(
                trace, server, images_for=lambda samples: images, seed=3
            )
            server.stop()
            assert overloaded["slo"] == "fail"
            server.resize_workers(4)
            server.counters = ServeCounters()  # fresh accounting window
            server.stats.latencies_ms.clear()  # fresh SLO window
            server.start()
            scaled = runner.replay_live(
                trace, server, images_for=lambda samples: images, seed=3
            )
            server.stop()
        assert scaled["slo"] == "pass"
        assert scaled["served"] == scaled["offered"]
