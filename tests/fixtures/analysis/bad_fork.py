"""R3 fixture: fork-unsafe worker bodies plus a fork after thread creation."""

import threading

import numpy as np


def chatty_worker_main(state):
    log = open("/tmp/worker.log", "a")
    guard = threading.Lock()
    jitter = np.random.rand(4)
    log.write(str(guard) + str(jitter))


def launch(pool, state):
    watcher = threading.Thread(target=_watch)
    watcher.start()
    return pool._fork(chatty_worker_main, state, name="w0")


def _watch():
    pass
