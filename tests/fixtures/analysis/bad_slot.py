"""R2 fixture: raw slot state-word transitions outside the named helpers."""

_SLOT_EMPTY = 0
_SLOT_READY = 2


def hijack_slot(state):
    with state.lock:
        state.meta[3, 0] = _SLOT_READY


def flush_ring(state):
    with state.lock:
        state.meta[:, 0] = _SLOT_EMPTY
