"""Clean fixture: protocol-conformant accesses; the analyzer reports nothing."""

_SLOT_FILLING = 1


def _reserve_empty_slot(meta, lock):
    with lock:
        meta[0, 0] = _SLOT_FILLING
        return 0


def publish(state):
    return _reserve_empty_slot(state.meta, state.lock)


def watch(state):
    # repro: waive[R1] - metrics-only sampling of the ring state
    return state.meta[:, 0]
