"""R4 fixture: a deferred out= synchronisation step that is never published."""


class StalePipeline:
    def apply_pending(self, weights, updates, back):
        self.synchroniser.step_matrix(weights, updates, out=back)
        self.iteration += 1

    def apply_and_flip(self, weights, updates, back, back_index):
        self.synchroniser.step_matrix(weights, updates, out=back)
        self._published_index = back_index
