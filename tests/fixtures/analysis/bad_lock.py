"""R1 fixture: shared state words accessed outside the protocol lock."""


def peek_states(state):
    return state.meta[:, 0]


def raise_stop(pool):
    pool._stop_flag.array[0, 0] = 1


def locked_ticket_write(state):
    with state.lock:
        state.meta[2, 1] = 99
