"""Learners, task descriptors and the training-result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.batching import Batch
from repro.engine import (
    GlobalSyncTask,
    LearningTask,
    Learner,
    LocalSyncTask,
    ModelReplica,
    TaskKind,
    TrainingMetrics,
    TrainingResult,
)
from repro.engine.metrics import EpochRecord
from repro.engine.tasks import IterationTasks
from repro.models import MLP
from repro.utils.rng import RandomState

rng = RandomState(77, name="learner-tests")


def _learner():
    model = MLP(input_dim=8, num_classes=3, hidden_sizes=(6,), rng=rng)
    replica = ModelReplica(0, model, gpu_id=0, stream_id=2)
    return Learner(0, replica)


def _batch(size=16):
    images = rng.normal(size=(size, 1, 1, 8)).astype(np.float32)
    labels = rng.integers(0, 3, size=size)
    return Batch(images=images, labels=labels, index=0, epoch=0)


class TestLearner:
    def test_compute_gradient_returns_flat_vector_and_loss(self):
        learner = _learner()
        gradient, loss = learner.compute_gradient(_batch())
        assert gradient.shape == (learner.replica.num_parameters(),)
        assert np.isfinite(gradient).all()
        assert loss > 0
        assert learner.batches_processed == 1
        assert learner.last_loss == loss

    def test_compute_gradient_does_not_modify_weights(self):
        learner = _learner()
        before = learner.replica.vector().copy()
        learner.compute_gradient(_batch())
        np.testing.assert_allclose(learner.replica.vector(), before)

    def test_gradient_descends_the_loss(self):
        learner = _learner()
        batch = _batch(32)
        gradient, loss_before = learner.compute_gradient(batch)
        learner.replica.load_vector(learner.replica.vector() - 0.1 * gradient)
        _, loss_after = learner.compute_gradient(batch)
        assert loss_after < loss_before

    def test_evaluate_returns_probability(self):
        learner = _learner()
        batch = _batch(20)
        acc = learner.evaluate(batch.images, batch.labels)
        assert 0.0 <= acc <= 1.0
        # Evaluation must leave the model back in training mode.
        assert learner.replica.model.training

    def test_learner_exposes_gpu_and_stream(self):
        learner = _learner()
        assert learner.gpu_id == 0
        assert learner.stream_id == 2


class TestTaskDescriptors:
    def test_task_kinds_and_durations(self):
        learning = LearningTask(1, 0, 0, 0, 1, 5, 32, start=1.0, end=2.5)
        local = LocalSyncTask(2, 0, 0, 0, 1, start=2.5, end=2.6)
        global_task = GlobalSyncTask(3, 0, 0, start=2.6, end=2.9, payload_bytes=1000)
        assert learning.kind is TaskKind.LEARNING
        assert local.kind is TaskKind.LOCAL_SYNC
        assert global_task.kind is TaskKind.GLOBAL_SYNC
        assert learning.duration == pytest.approx(1.5)
        assert global_task.duration == pytest.approx(0.3)

    def test_iteration_tasks_aggregate_times(self):
        learning = LearningTask(1, 0, 0, 0, 1, 5, 32, start=1.0, end=2.0)
        local = LocalSyncTask(2, 0, 0, 0, 1, start=2.0, end=2.2)
        tasks = IterationTasks(0, (learning,), (local,), (), synchronised=False)
        assert tasks.start_time() == pytest.approx(1.0)
        assert tasks.end_time() == pytest.approx(2.2)
        empty = IterationTasks(1, (), (), (), synchronised=True)
        assert empty.start_time() == 0.0 and empty.end_time() == 0.0


class TestTrainingResult:
    def _result(self, target=0.8):
        metrics = TrainingMetrics()
        for epoch, acc in enumerate([0.5, 0.9, 0.95]):
            metrics.add(
                EpochRecord(
                    epoch=epoch,
                    sim_time=float(epoch + 1),
                    test_accuracy=acc,
                    train_loss=0.5,
                    samples_processed=(epoch + 1) * 128,
                    learning_rate=0.1,
                    replicas=4,
                )
            )
        return TrainingResult(
            system="crossbow",
            model_name="mlp",
            dataset_name="blobs",
            num_gpus=2,
            replicas_per_gpu=2,
            batch_size=16,
            metrics=metrics,
            reached_target=True,
            target_accuracy=target,
            wall_clock_seconds=1.0,
        )

    def test_default_threshold_is_the_target(self):
        result = self._result(target=0.8)
        assert result.time_to_accuracy() == result.metrics.time_to_accuracy(0.8)
        assert result.epochs_to_accuracy() == result.metrics.epochs_to_accuracy(0.8)

    def test_no_target_returns_none(self):
        result = self._result(target=0.8)
        result.target_accuracy = None
        assert result.time_to_accuracy() is None
        assert result.epochs_to_accuracy() is None

    def test_total_replicas_and_summary(self):
        result = self._result()
        assert result.total_replicas == 4
        summary = result.summary()
        assert summary["replicas_per_gpu"] == 2
        assert summary["reached_target"] is True
        assert summary["epochs"] == 3
