"""Tests for pipelined synchronisation (depth 0/1) and the persistent worker pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CrossbowConfig,
    CrossbowTrainer,
    SyncCounters,
    process_execution_supported,
)
from repro.errors import ConfigurationError, SchedulingError
from repro.serve import EvaluationService

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)


def _config(**overrides):
    defaults = dict(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=2,
        max_epochs=2,
        dataset_overrides={"num_train": 256, "num_test": 64},
        seed=7,
        execution="process",
    )
    defaults.update(overrides)
    return CrossbowConfig(**defaults)


def _final_state(config):
    trainer = CrossbowTrainer(config)
    try:
        result = trainer.train()
        return {
            "center": trainer.central_model_vector(),
            "weights": trainer.replica_bank.active_matrix().copy(),
            "accuracy": trainer.evaluate(),
            "extra": result.extra,
        }
    finally:
        trainer.close()


# --------------------------------------------------------------------- configuration
def test_pipeline_depth_validated():
    with pytest.raises(ConfigurationError):
        _config(pipeline_depth=2)
    with pytest.raises(ConfigurationError):
        _config(execution="serial", pipeline_depth=1)
    assert _config(pipeline_depth=1).pipeline_depth == 1


def test_sync_counters_accounting():
    counters = SyncCounters()
    counters.record(0.25, overlapped=False, staleness=0)
    counters.record(0.75, overlapped=True, staleness=1)
    assert counters.iterations == 2
    assert counters.stale_iterations == 1
    assert counters.max_staleness == 1
    assert counters.overlap_fraction == pytest.approx(0.75)
    flat = counters.as_dict()
    assert flat["sync_stall_seconds"] == pytest.approx(0.25)
    assert flat["overlapped_sync_seconds"] == pytest.approx(0.75)


# --------------------------------------------------------------------- depth-0 identity
@needs_fork
class TestDepthZeroIdentity:
    def test_depth0_bit_identical_to_serial(self):
        """pipeline_depth=0 must keep the PR-2 guarantee: identical to serial."""
        serial = _final_state(_config(execution="serial"))
        depth0 = _final_state(_config(pipeline_depth=0))
        np.testing.assert_array_equal(depth0["center"], serial["center"])
        np.testing.assert_array_equal(depth0["weights"], serial["weights"])
        assert depth0["accuracy"] == serial["accuracy"]
        # Synchronous schedule: every step_matrix ran with workers idle.
        assert depth0["extra"]["max_staleness"] == 0
        assert depth0["extra"]["overlapped_sync_seconds"] == 0.0

    def test_depth0_identical_with_and_without_persistent_pool(self):
        persistent = _final_state(_config(pipeline_depth=0, persistent_pool=True))
        respawned = _final_state(_config(pipeline_depth=0, persistent_pool=False))
        np.testing.assert_array_equal(persistent["center"], respawned["center"])
        np.testing.assert_array_equal(persistent["weights"], respawned["weights"])


# --------------------------------------------------------------------- depth-1 semantics
@needs_fork
class TestPipelinedExecution:
    def test_depth1_trains_and_bounds_staleness(self):
        state = _final_state(_config(pipeline_depth=1))
        assert np.isfinite(state["center"]).all()
        assert state["accuracy"] > 0.5
        extra = state["extra"]
        # Exactly one fresh iteration per epoch (the pipeline fill); everything
        # else ran on weights exactly one update stale — the explicit bound.
        assert extra["max_staleness"] == 1
        assert extra["stale_iterations"] == extra["sync_iterations"] - 2  # 2 epochs
        assert extra["overlapped_sync_seconds"] > 0.0

    def test_depth1_matches_stale_gradient_reference(self):
        """Depth 1 must equal a hand-rolled one-iteration-stale SMA schedule.

        The reference drives the *serial* trainer's own components: gradients
        for iteration ``t`` are computed on the weights as of iteration
        ``t-1`` (``t=0`` runs fresh — the pipeline fill), the fused update is
        applied to the weights of iteration ``t``, and every epoch drains.
        Bit-equality here pins the publish/flip protocol's exact semantics:
        same batch assignment, same decay association, same flip points.
        """
        epochs = 2
        config = _config(pipeline_depth=1, max_epochs=epochs, weight_decay=1e-3)
        pipelined = _final_state(config)

        ref = CrossbowTrainer(
            _config(execution="serial", max_epochs=epochs, weight_decay=1e-3)
        )
        k = len(ref.learners)
        bank = ref.replica_bank.active_matrix()
        lr = ref.schedule.rate(0.0)
        decay = ref.weight_decay
        updates = np.zeros_like(bank)
        for epoch in range(epochs):
            batches = list(ref.pipeline.epoch_batches(epoch))
            iterations = len(batches) // k
            # history[j] = weights after j applied updates (this epoch)
            history = [bank.copy()]
            for t in range(iterations):
                stale = history[max(t - 1, 0)]
                bank[...] = stale
                for j in range(k):
                    ref.learners[j].compute_gradient(
                        batches[t * k + j], out=updates[j]
                    )
                np.multiply(updates, lr, out=updates)
                if decay:
                    updates += lr * decay * history[t]
                new = history[t].copy()
                ref.synchroniser.step_matrix(new, updates)
                history.append(new)
            bank[...] = history[-1]

        np.testing.assert_array_equal(pipelined["weights"], bank)
        np.testing.assert_array_equal(
            pipelined["center"], np.asarray(ref.synchroniser.center)
        )

    def test_depth1_flush_on_midtraining_checkpoint(self):
        """central_model() mid-epoch must apply the in-flight update first."""
        trainer = CrossbowTrainer(_config(pipeline_depth=1, max_epochs=1))
        try:
            executor = trainer._executor
            trainer._apply_schedule(0)
            executor.begin_epoch(0)
            # Run two pipelined iterations by hand; the second leaves a
            # pending update and a flipped publish buffer.
            for _ in range(2):
                staleness = 1 if trainer._pending is not None else 0
                update_index = trainer._next_update_index
                executor.issue_step(
                    trainer.learners, trainer._published_index, update_index
                )
                trainer._next_update_index = 1 - update_index
                if trainer._pending is not None:
                    trainer._apply_pending(overlapped=True)
                losses = executor.collect_step()
                from repro.engine.crossbow import _PendingIteration

                trainer._pending = _PendingIteration(
                    losses=losses,
                    replicas=[learner.replica for learner in trainer.learners],
                    update_index=update_index,
                    staleness=staleness,
                )
            assert trainer._pending is not None
            version_before = trainer.synchroniser.version
            model = trainer.central_model()
            assert trainer._pending is None  # flushed
            assert trainer._published_index == 0  # bank republished
            assert trainer.synchroniser.version == version_before + 1
            np.testing.assert_array_equal(
                model.parameter_vector(), np.asarray(trainer.synchroniser.center)
            )
        finally:
            trainer.close()

    def test_depth1_dead_worker_during_inflight_flip(self):
        """A worker dying mid-flip must raise, not hang, and close() must work."""
        trainer = CrossbowTrainer(_config(pipeline_depth=1, max_epochs=1))
        try:
            trainer._apply_schedule(0)
            executor = trainer._executor
            executor.begin_epoch(0)
            executor.issue_step(trainer.learners, 0, 0)
            pending_losses = executor.collect_step()
            assert np.isfinite(pending_losses).all()
            # Second step in flight; kill a worker while the parent would be
            # applying the first iteration's update into the back buffer.
            executor.issue_step(trainer.learners, 0, 1)
            pool = executor._pool
            pool._handles[0].process.terminate()
            pool._handles[0].process.join(timeout=10.0)
            with pytest.raises(SchedulingError, match="died without reporting"):
                executor.collect_step()
        finally:
            trainer.close()


# --------------------------------------------------------------------- persistent pool
@needs_fork
class TestPersistentPool:
    def _autotune_config(self, **overrides):
        defaults = dict(
            batch_size=8,
            replicas_per_gpu=1,
            max_replicas_per_gpu=4,
            auto_tune=True,
            auto_tune_interval=4,
            max_epochs=3,
            seed=3,
        )
        defaults.update(overrides)
        return _config(**defaults)

    def test_persistent_resize_matches_respawn_bitwise(self):
        """In-place re-sharding must be numerically invisible."""
        persistent = _final_state(self._autotune_config(persistent_pool=True))
        respawned = _final_state(self._autotune_config(persistent_pool=False))
        np.testing.assert_array_equal(persistent["center"], respawned["center"])
        np.testing.assert_array_equal(persistent["weights"], respawned["weights"])
        assert persistent["accuracy"] == respawned["accuracy"]
        # The persistent run really took the in-place path.
        assert persistent["extra"]["pool_resizes_in_place"] > 0
        assert persistent["extra"]["pool_respawns"] == 1
        assert respawned["extra"]["pool_resizes_in_place"] == 0
        assert respawned["extra"]["pool_respawns"] > 1

    def test_persistent_resize_keeps_pool_object(self):
        # Headroom above what the tuner reaches, so the manual grow below
        # stays within the pre-allocated bank (no generation bump).
        trainer = CrossbowTrainer(
            self._autotune_config(persistent_pool=True, max_replicas_per_gpu=8)
        )
        try:
            trainer.train()
            executor = trainer._executor
            pool_before = executor._pool
            assert pool_before is not None and pool_before.is_alive()
            # Mid-training style resize: fake an epoch in progress.
            executor.begin_epoch(trainer.config.max_epochs)
            trainer._grow_learners()
            assert executor._pool is pool_before
            assert pool_before.num_workers == len(trainer.learners)
            losses = executor.run_iteration(trainer.learners)
            assert losses.shape == (len(trainer.learners),)
            assert np.isfinite(losses).all()
        finally:
            trainer.close()

    def test_persistent_resize_preserves_bn_buffer_sync_back(self):
        """Batch-norm running stats must survive an in-place resize.

        The persistent path deliberately skips the pre-respawn buffer
        round-trip (worker-private BN state survives in the worker), so the
        central model after a resize must still see the accumulated
        statistics — asserted by bit-comparing against the respawn path,
        which does sync buffers through the parent.
        """
        results = {}
        for persistent in (True, False):
            trainer = CrossbowTrainer(
                CrossbowConfig(
                    model_name="resnet32-scaled",
                    dataset_name="cifar10-scaled",
                    num_gpus=1,
                    batch_size=16,
                    replicas_per_gpu=1,
                    max_replicas_per_gpu=2,
                    auto_tune=True,
                    auto_tune_interval=2,
                    max_epochs=2,
                    seed=11,
                    execution="process",
                    persistent_pool=persistent,
                    dataset_overrides={"num_train": 128, "num_test": 32},
                    model_overrides={"width_multiplier": 0.25, "blocks_per_stage": 1},
                )
            )
            try:
                trainer.train()
                model = trainer.central_model()
                buffers = {name: value.copy() for name, value in model.named_buffers()}
                assert buffers, "resnet central model must expose BN buffers"
                results[persistent] = (buffers, trainer.evaluate())
            finally:
                trainer.close()
        buffers_a, accuracy_a = results[True]
        buffers_b, accuracy_b = results[False]
        assert accuracy_a == accuracy_b
        for name in buffers_a:
            np.testing.assert_array_equal(buffers_a[name], buffers_b[name])
        # The BN statistics actually moved during training.
        assert any(
            not np.allclose(value, 0.0) and not np.allclose(value, 1.0)
            for value in buffers_a.values()
        )

    def test_resize_drains_pending_offpath_evaluation(self):
        """Bugfix: a resize must drain queued off-path evaluations first."""
        trainer = CrossbowTrainer(_config(max_epochs=1))
        service = trainer.attach_evaluation_service(EvaluationService(execution="serial"))
        try:
            trainer.train()
            # Queue an evaluation but do not drain it (no target accuracy and
            # serial service = deferred queue).
            checkpoint = trainer.publish_checkpoint(epoch=99)
            service.submit(checkpoint, epoch=99)
            assert service.pending() == 1
            executor = trainer._executor
            executor.begin_epoch(1)
            trainer._grow_learners()
            assert service.pending() == 0, "resize must drain the evaluation service"
            assert service.accuracy_for_epoch(99) is not None
        finally:
            trainer.close()
            service.close()
