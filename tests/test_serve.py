"""Tests for the serving plane: checkpoint store, off-path evaluation, inference."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported
from repro.errors import CheckpointError, ConfigurationError
from repro.models import create_model
from repro.serve import Checkpoint, CheckpointStore, EvaluationService, InferenceServer
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import RandomState

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)

# Noisy blobs keep test accuracy off the 100% ceiling, so the bit-identical
# comparisons below compare non-trivial floats rather than saturated 1.0s.
_DATASET = {"num_train": 256, "num_test": 128, "noise_scale": 2.5}


def _config(**overrides):
    defaults = dict(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=2,
        max_epochs=3,
        dataset_overrides=dict(_DATASET),
        seed=7,
    )
    defaults.update(overrides)
    return CrossbowConfig(**defaults)


def _bn_model(rng=None):
    return create_model("resnet32-scaled", rng=rng or RandomState(4))


# ------------------------------------------------------------------------- checkpoints
class TestCheckpoint:
    def test_from_model_apply_to_round_trip_with_bn_buffers(self):
        model = _bn_model()
        buffers = dict(model.named_buffers())
        next(iter(buffers.values()))[...] = 0.25
        checkpoint = Checkpoint.from_model(model, epoch=3, iteration=17, sma_restarts=1)

        fresh = _bn_model(RandomState(9))
        assert not np.allclose(fresh.parameter_vector(), model.parameter_vector())
        checkpoint.apply_to(fresh)
        np.testing.assert_array_equal(fresh.parameter_vector(), model.parameter_vector())
        for name, buf in fresh.named_buffers():
            np.testing.assert_array_equal(buf, buffers[name])

    def test_snapshot_is_a_private_copy(self):
        model = _bn_model()
        checkpoint = Checkpoint.from_model(model)
        before = checkpoint.parameters.copy()
        for param in model.parameters():
            param.data[...] = -1.0
        np.testing.assert_array_equal(checkpoint.parameters, before)

    def test_apply_to_rejects_unknown_buffer(self):
        model = create_model("mlp", rng=RandomState(1), input_dim=8, num_classes=2)
        checkpoint = Checkpoint.from_model(model)
        checkpoint.buffers["no.such.buffer"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(CheckpointError, match="no.such.buffer"):
            checkpoint.apply_to(model.clone())

    def test_archive_round_trip_preserves_metadata(self, tmp_path):
        model = _bn_model()
        checkpoint = Checkpoint.from_model(
            model, epoch=5, iteration=80, sma_restarts=2, metadata={"lr": 0.05}
        )
        checkpoint.version = 11
        from repro.utils.serialization import save_arrays

        path = save_arrays(
            tmp_path / "snap", checkpoint.to_arrays(), checkpoint.spill_metadata()
        )
        restored = Checkpoint.from_archive(path)
        assert (restored.epoch, restored.iteration, restored.sma_restarts) == (5, 80, 2)
        assert restored.version == 11
        assert restored.metadata == {"lr": 0.05}
        np.testing.assert_array_equal(restored.parameters, checkpoint.parameters)
        assert set(restored.buffers) == set(checkpoint.buffers)


class TestCheckpointStore:
    def _checkpoint(self, value, p=6):
        return Checkpoint(
            parameters=np.full(p, float(value), dtype=np.float32), buffers={}, epoch=value
        )

    def test_publish_assigns_monotone_versions(self):
        store = CheckpointStore(capacity=4)
        versions = [store.publish(self._checkpoint(i)) for i in range(3)]
        assert versions == [0, 1, 2]
        assert store.latest_version() == 2
        assert store.latest().epoch == 2
        assert store.versions() == [0, 1, 2]

    def test_ring_evicts_oldest(self):
        store = CheckpointStore(capacity=2)
        for i in range(5):
            store.publish(self._checkpoint(i))
        assert store.versions() == [3, 4]
        assert len(store) == 2
        with pytest.raises(CheckpointError, match="version 0"):
            store.get(0)

    def test_spill_and_reload(self, tmp_path):
        store = CheckpointStore(capacity=1, spill_dir=tmp_path / "spill")
        for i in range(3):
            store.publish(self._checkpoint(i))
        assert store.versions() == [2]
        assert store.spilled_versions() == [0, 1]
        reloaded = store.get(0)
        assert reloaded.version == 0
        assert reloaded.epoch == 0
        np.testing.assert_array_equal(
            reloaded.parameters, np.zeros(6, dtype=np.float32)
        )
        assert 1 in store and 2 in store and 7 not in store

    def test_empty_store(self):
        store = CheckpointStore(capacity=2)
        assert store.latest() is None
        assert store.latest_version() is None
        with pytest.raises(CheckpointError):
            store.get(0)
        with pytest.raises(CheckpointError):
            CheckpointStore(capacity=0)

    def test_nbytes_bounded_by_capacity(self):
        store = CheckpointStore(capacity=2)
        for i in range(6):
            store.publish(self._checkpoint(i, p=100))
        assert store.nbytes() == 2 * 100 * 4


# ------------------------------------------------------------------ trainer publishing
class TestTrainerPublishing:
    def test_publish_checkpoint_metadata_and_store(self):
        trainer = CrossbowTrainer(_config(max_epochs=1))
        store = trainer.attach_checkpoint_store(CheckpointStore(capacity=4))
        trainer.train()
        checkpoint = trainer.publish_checkpoint(epoch=0)
        assert checkpoint.iteration == trainer._iteration
        assert checkpoint.epoch == 0
        assert checkpoint.version is not None
        assert store.latest() is checkpoint
        np.testing.assert_array_equal(
            checkpoint.parameters, trainer.central_model_vector()
        )

    def test_train_publishes_at_eval_epochs_when_store_attached(self):
        trainer = CrossbowTrainer(_config(max_epochs=3, evaluate_every_epochs=2))
        store = trainer.attach_checkpoint_store(CheckpointStore(capacity=8))
        trainer.train()
        # eval epochs: 1 (periodic) and 2 (final) -> two published checkpoints
        assert [store.get(v).epoch for v in store.versions()] == [1, 2]

    def test_central_model_cached_between_steps(self):
        trainer = CrossbowTrainer(_config(max_epochs=1))
        trainer.train()
        first = trainer.central_model()
        assert trainer.central_model() is first  # no intervening step
        trainer._train_epoch(1)  # any step invalidates
        assert trainer.central_model() is not first

    def test_evaluate_every_epochs_zero_skips_evaluation(self):
        trainer = CrossbowTrainer(_config(max_epochs=2, evaluate_every_epochs=0))
        result = trainer.train()
        assert [r.test_accuracy for r in result.metrics.records] == [0.0, 0.0]


# ------------------------------------------------------------------ evaluation service
class TestEvaluationService:
    def _run_inline(self, **overrides):
        trainer = CrossbowTrainer(_config(**overrides))
        try:
            result = trainer.train()
            return [r.test_accuracy for r in result.metrics.records]
        finally:
            trainer.close()

    def _run_with_service(self, service_execution, **overrides):
        trainer = CrossbowTrainer(_config(**overrides))
        service = EvaluationService(execution=service_execution)
        trainer.attach_evaluation_service(service)
        try:
            result = trainer.train()
            assert not result.metrics.has_pending()
            return [r.test_accuracy for r in result.metrics.records], service
        finally:
            service.close()
            trainer.close()

    def test_serial_drained_accuracies_match_inline(self):
        inline = self._run_inline()
        assert any(0.0 < acc < 1.0 for acc in inline)  # non-trivial comparison
        deferred, service = self._run_with_service("serial")
        assert deferred == inline
        assert service.evaluations_completed == 3

    def test_serial_matches_inline_with_sparse_eval_epochs(self):
        overrides = dict(max_epochs=5, evaluate_every_epochs=2)
        inline = self._run_inline(**overrides)
        deferred, _ = self._run_with_service("serial", **overrides)
        assert deferred == inline

    @needs_fork
    def test_process_drained_accuracies_match_inline(self):
        inline = self._run_inline()
        async_acc, service = self._run_with_service("process")
        assert async_acc == inline

    @needs_fork
    def test_process_matches_inline_under_process_training(self):
        """Both planes in worker processes: training learners and evaluation."""
        inline = self._run_inline()
        async_acc, _ = self._run_with_service("process", execution="process")
        assert async_acc == inline

    @needs_fork
    def test_accuracies_resolve_before_drain_eventually(self):
        trainer = CrossbowTrainer(_config(max_epochs=1))
        service = EvaluationService(execution="process")
        trainer.attach_evaluation_service(service)
        try:
            checkpoint = trainer.publish_checkpoint(epoch=0)
            service.submit(checkpoint, epoch=0)
            deadline = time.monotonic() + 60.0
            while service.pending() and time.monotonic() < deadline:
                service.poll()
                time.sleep(0.01)
            assert service.pending() == 0
            assert service.accuracy_for_epoch(0) == trainer.evaluate()
        finally:
            service.close()
            trainer.close()

    def test_standalone_bind_and_drain(self):
        trainer = CrossbowTrainer(_config(max_epochs=1))
        trainer.train()
        service = EvaluationService(execution="serial")
        service.bind(trainer.initial_model, trainer.pipeline)
        ticket = service.submit(trainer.publish_checkpoint(epoch=0), epoch=0)
        resolved = service.drain()
        assert resolved[ticket] == trainer.evaluate()
        trainer.close()

    def test_submit_requires_bind(self):
        service = EvaluationService(execution="serial")
        model = create_model("mlp", rng=RandomState(1), input_dim=8, num_classes=2)
        with pytest.raises(ConfigurationError, match="bind"):
            service.submit(Checkpoint.from_model(model))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EvaluationService(execution="threads")
        with pytest.raises(ConfigurationError):
            EvaluationService(num_slots=0)

    @pytest.mark.parametrize("service_execution", ["serial", "process"])
    def test_target_accuracy_early_stop_matches_inline(self, service_execution):
        """A target turns eval epochs into drain barriers: same stop epoch as inline."""
        if service_execution == "process" and not process_execution_supported():
            pytest.skip("requires the fork start method")
        # Easy blobs: the target is reached after the first epoch.
        overrides = dict(
            max_epochs=6,
            target_accuracy=0.9,
            dataset_overrides={"num_train": 256, "num_test": 128},
        )
        inline_trainer = CrossbowTrainer(_config(**overrides))
        inline = inline_trainer.train()
        inline_trainer.close()
        assert inline.reached_target and len(inline.metrics.records) < 6

        trainer = CrossbowTrainer(_config(**overrides))
        service = EvaluationService(execution=service_execution)
        trainer.attach_evaluation_service(service)
        try:
            result = trainer.train()
            assert result.reached_target == inline.reached_target
            assert len(result.metrics.records) == len(inline.metrics.records)
            assert [r.test_accuracy for r in result.metrics.records] == [
                r.test_accuracy for r in inline.metrics.records
            ]
        finally:
            service.close()
            trainer.close()

    def test_pending_records_carry_nan_until_resolved(self):
        """Serial mode: accuracies stay pending during training, resolve at drain."""
        trainer = CrossbowTrainer(_config(max_epochs=2))
        service = EvaluationService(execution="serial")
        trainer.attach_evaluation_service(service)
        # Drive the loop manually to observe the intermediate pending state.
        trainer._apply_schedule(0)
        trainer._train_epoch(0)
        checkpoint = trainer.publish_checkpoint(epoch=0)
        service.submit(checkpoint, epoch=0)
        from repro.engine import EpochRecord

        trainer.metrics.add(
            EpochRecord(0, 0.0, float("nan"), 0.5, 256, 0.1, 2), pending_from=0
        )
        assert trainer.metrics.has_pending()
        assert math.isnan(trainer.metrics.records[0].test_accuracy)
        service.drain()
        assert not trainer.metrics.has_pending()
        assert trainer.metrics.records[0].test_accuracy == trainer.evaluate()
        trainer.close()


# ------------------------------------------------------------------- inference server
class TestInferenceServer:
    def _model(self):
        return create_model(
            "mlp", rng=RandomState(3), input_dim=32, num_classes=4, hidden_sizes=(16,)
        )

    def _images(self, n, rng_seed=0):
        return RandomState(rng_seed).normal(size=(n, 1, 1, 32)).astype(np.float32)

    def test_predictions_match_direct_forward(self):
        model = self._model()
        server = InferenceServer(model, max_batch_size=8, max_latency_ms=1.0)
        images = self._images(4)
        with server:
            served = server.predict(images)
        model.eval()
        with no_grad():
            direct = model(Tensor(images)).data
        np.testing.assert_array_equal(served, direct)

    def test_microbatching_coalesces_requests(self):
        server = InferenceServer(self._model(), max_batch_size=64, max_latency_ms=50.0)
        with server:
            futures = [server.submit(self._images(1, i)) for i in range(16)]
            results = [f.result(timeout=30.0) for f in futures]
        assert all(r.shape == (1, 4) for r in results)
        stats = server.stats.summary()
        assert stats["requests"] == 16
        # Coalescing must have packed multiple requests per forward pass.
        assert stats["batches"] < 16
        assert stats["mean_batch_size"] > 1.0
        assert stats["p99_ms"] >= stats["p50_ms"]

    def test_batch_size_one_disables_coalescing(self):
        server = InferenceServer(self._model(), max_batch_size=1, max_latency_ms=50.0)
        with server:
            futures = [server.submit(self._images(1, i)) for i in range(6)]
            [f.result(timeout=30.0) for f in futures]
        assert server.stats.batches == 6

    def test_hot_swap_to_newest_checkpoint(self):
        model = self._model()
        store = CheckpointStore(capacity=4)
        store.publish(Checkpoint.from_model(model))
        server = InferenceServer(model, store=store, max_batch_size=4, max_latency_ms=0.0)
        images = self._images(2)
        with server:
            before = server.predict(images)
            assert server.served_version == 0
            # Publish an updated model; the next batch must serve the new weights.
            updated = model.clone()
            for param in updated.parameters():
                param.data[...] += 1.0
            store.publish(Checkpoint.from_model(updated))
            after = server.predict(images)
            assert server.served_version == 1
        assert not np.array_equal(before, after)
        assert server.stats.hot_swaps >= 1
        updated.eval()
        with no_grad():
            expected = updated(Tensor(images)).data
        np.testing.assert_array_equal(after, expected)

    def test_multi_sample_requests_respect_max_batch_size(self):
        """A request that would overflow the cap starts the next batch instead."""
        server = InferenceServer(self._model(), max_batch_size=4, max_latency_ms=100.0)
        with server:
            futures = [server.submit(self._images(3, i)) for i in range(5)]
            [f.result(timeout=30.0) for f in futures]
        # 3+3 > 4, so no two requests may share a forward pass.
        assert server.stats.batches == 5
        assert server.stats.samples == 15

    def test_oversize_single_request_is_served_alone(self):
        server = InferenceServer(self._model(), max_batch_size=2, max_latency_ms=1.0)
        with server:
            result = server.predict(self._images(5))
        assert result.shape == (5, 4)
        assert server.stats.batches == 1

    def test_submit_requires_running_server_and_valid_shape(self):
        server = InferenceServer(self._model())
        with pytest.raises(ConfigurationError, match="start"):
            server.submit(self._images(1))
        with server:
            with pytest.raises(ConfigurationError, match="sample arrays"):
                server.submit(np.zeros(32, dtype=np.float32))

    def test_forward_failure_fails_the_future_not_the_loop(self):
        server = InferenceServer(self._model(), max_batch_size=1)
        with server:
            bad = server.submit(np.zeros((1, 1, 1, 7), dtype=np.float32))  # wrong width
            with pytest.raises(Exception):
                bad.result(timeout=30.0)
            good = server.predict(self._images(1))  # loop survived
        assert good.shape == (1, 4)

    def test_stop_fails_queued_requests(self):
        from concurrent.futures import Future

        from repro.serve.inference import _Request

        server = InferenceServer(self._model())
        server.start()
        # Freeze the loop first, then sneak in a request it will never serve;
        # stop() must fail the future instead of leaving it hanging.
        server._stop.set()
        server._thread.join(timeout=10.0)
        future: Future = Future()
        with server._wakeup:
            server._pending.append(
                _Request(images=self._images(1), future=future, enqueued_at=0.0)
            )
        server.stop()
        with pytest.raises(ConfigurationError, match="stopped"):
            future.result(timeout=5.0)
        with pytest.raises(ConfigurationError, match="start"):
            server.submit(self._images(1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InferenceServer(self._model(), max_batch_size=0)
        with pytest.raises(ConfigurationError):
            InferenceServer(self._model(), max_latency_ms=-1.0)


# --------------------------------------------------------- end-to-end: train and serve
class TestTrainThenServe:
    def test_training_run_feeds_inference_server(self):
        trainer = CrossbowTrainer(_config(max_epochs=2))
        store = trainer.attach_checkpoint_store(CheckpointStore(capacity=4))
        trainer.train()
        server = InferenceServer(
            trainer.initial_model, store=store, max_batch_size=16, max_latency_ms=1.0
        )
        images = trainer.dataset.test_images[:8]
        with server:
            logits = server.predict(images)
        assert server.served_version == store.latest_version()
        central = trainer.central_model()
        central.eval()
        with no_grad():
            expected = central(Tensor(images)).data
        np.testing.assert_array_equal(logits, expected)
        trainer.close()

    @needs_fork
    def test_bn_model_checkpoint_determinism_process(self):
        """BN buffers ride the checkpoint: off-path eval matches inline on a CNN."""
        overrides = dict(
            model_name="resnet32-scaled",
            dataset_name="cifar10-scaled",
            dataset_overrides={"num_train": 64, "num_test": 32},
            batch_size=8,
            max_epochs=1,
        )
        inline_trainer = CrossbowTrainer(_config(**overrides))
        inline = inline_trainer.train()
        inline_acc = [r.test_accuracy for r in inline.metrics.records]
        inline_trainer.close()

        trainer = CrossbowTrainer(_config(**overrides))
        service = EvaluationService(execution="process")
        trainer.attach_evaluation_service(service)
        try:
            result = trainer.train()
            assert [r.test_accuracy for r in result.metrics.records] == inline_acc
        finally:
            service.close()
            trainer.close()
