"""Tests for the multi-process learner executor and the sharded input path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BatchPipeline, ShardedBatchPipeline, ShardedBatchStream, create_dataset
from repro.engine import (
    CrossbowConfig,
    CrossbowTrainer,
    ModelReplica,
    ReplicaBank,
    SharedMatrix,
    SharedReplicaBank,
    process_execution_supported,
)
from repro.errors import ConfigurationError, DataError
from repro.models import create_model
from repro.utils.rng import RandomState

needs_fork = pytest.mark.skipif(
    not process_execution_supported(), reason="requires the fork start method"
)


def _dataset(num_train=256, num_test=64):
    return create_dataset("blobs", num_train=num_train, num_test=num_test)


def _config(execution="serial", **overrides):
    defaults = dict(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=2,
        max_epochs=2,
        dataset_overrides={"num_train": 256, "num_test": 64},
        seed=7,
        execution=execution,
    )
    defaults.update(overrides)
    return CrossbowConfig(**defaults)


# --------------------------------------------------------------------- shared memory
class TestSharedMatrix:
    def test_shape_and_zero_init(self):
        matrix = SharedMatrix(3, 5)
        try:
            assert matrix.array.shape == (3, 5)
            assert matrix.array.dtype == np.float32
            assert np.all(matrix.array == 0.0)
        finally:
            matrix.close()

    def test_close_is_idempotent(self):
        matrix = SharedMatrix(2, 2)
        matrix.close()
        matrix.close()

    def test_rejects_negative_dimensions(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            SharedMatrix(-1, 4)


class TestSharedReplicaBank:
    def test_behaves_like_replica_bank(self, rng):
        model = create_model("mlp", rng=rng, input_dim=16, num_classes=4, hidden_sizes=(8,))
        p = model.num_parameters()
        shared = SharedReplicaBank(p, capacity=3)
        plain = ReplicaBank(p, capacity=3)
        try:
            for bank in (shared, plain):
                for j in range(3):
                    bank.attach(ModelReplica(j, model.clone(), gpu_id=0, stream_id=j))
            assert shared.active_matrix().shape == plain.active_matrix().shape
            np.testing.assert_array_equal(shared.active_matrix(), plain.active_matrix())
            # Writing through the bank is visible through the module parameters.
            shared.active_matrix()[1] = 42.0
            assert np.all(shared.owners()[1].model.parameter_vector() == 42.0)
        finally:
            shared.close()

    def test_grow_bumps_generation(self, rng):
        model = create_model("mlp", rng=rng, input_dim=16, num_classes=4, hidden_sizes=(8,))
        bank = SharedReplicaBank(model.num_parameters(), capacity=1)
        try:
            first_generation = bank.generation
            bank.attach(ModelReplica(0, model.clone(), gpu_id=0, stream_id=0))
            bank.attach(ModelReplica(1, model.clone(), gpu_id=0, stream_id=1))  # forces grow
            assert bank.generation > first_generation
            assert len(bank) == 2
        finally:
            bank.close()


# --------------------------------------------------------------------- sharded streaming
class TestShardedPipeline:
    def test_matches_serial_batch_assignment(self):
        """Shard j must stream exactly the batches learner j gets serially."""
        dataset = _dataset()
        k, batch_size, seed = 3, 16, 11
        serial = BatchPipeline(
            dataset, batch_size=batch_size, num_learners=k, rng=RandomState(seed, name="pipe")
        )
        sharded = ShardedBatchPipeline(
            dataset, batch_size=batch_size, num_shards=k, rng=RandomState(seed, name="pipe")
        )
        for epoch in range(2):
            serial_batches = list(serial.epoch_batches(epoch))
            order = sharded.begin_epoch(epoch)
            for stream in sharded.streams:
                stream.start_epoch(epoch, order)
            iterations = sharded.iterations_per_epoch()
            assert iterations == serial.batches_per_epoch // k
            for i in range(iterations):
                for j, stream in enumerate(sharded.streams):
                    expected = serial_batches[i * k + j]
                    batch = stream.next_batch()
                    np.testing.assert_array_equal(batch.images, expected.images)
                    np.testing.assert_array_equal(batch.labels, expected.labels)

    def test_prefetch_double_buffering(self):
        dataset = _dataset()
        pipeline = ShardedBatchPipeline(dataset, batch_size=16, num_shards=2, prefetch_depth=2)
        stream = pipeline.streams[0]
        order = pipeline.begin_epoch(0)
        stream.start_epoch(0, order)
        # start_epoch fills the buffer up to the prefetch depth.
        assert len(stream._buffer) == 2
        first = stream.next_batch()
        assert first.index == 0
        assert stream.prefetch() == 2

    def test_stream_exhaustion(self):
        dataset = _dataset(num_train=64)
        pipeline = ShardedBatchPipeline(dataset, batch_size=16, num_shards=2)
        stream = pipeline.streams[1]
        stream.start_epoch(0, pipeline.begin_epoch(0))
        consumed = 0
        while stream.remaining():
            stream.next_batch()
            consumed += 1
        assert consumed == 2  # 4 global batches, stride 2
        with pytest.raises(DataError):
            stream.next_batch()

    def test_mid_epoch_offset_resumes_correctly(self):
        """A resize re-creates streams mid-epoch; offset skips consumed batches."""
        dataset = _dataset()
        pipeline = ShardedBatchPipeline(dataset, batch_size=16, num_shards=2)
        order = pipeline.begin_epoch(0)
        streams = pipeline.reshard(4)
        for stream in streams:
            stream.start_epoch(0, order, offset=8)
        assert streams[0].next_batch().index == 8
        assert streams[3].next_batch().index == 11

    def test_reshard_preserves_master_stream(self):
        dataset = _dataset()
        a = ShardedBatchPipeline(dataset, batch_size=16, num_shards=2, rng=RandomState(5))
        b = ShardedBatchPipeline(dataset, batch_size=16, num_shards=2, rng=RandomState(5))
        b.reshard(4)
        b.reshard(2)
        np.testing.assert_array_equal(a.begin_epoch(0), b.begin_epoch(0))

    def test_validation(self):
        dataset = _dataset(num_train=64)
        with pytest.raises(DataError):
            ShardedBatchPipeline(dataset, batch_size=128, num_shards=1)
        with pytest.raises(DataError):
            ShardedBatchPipeline(dataset, batch_size=16, num_shards=0)
        with pytest.raises(DataError):
            ShardedBatchStream(dataset, batch_size=16, shard_index=2, num_shards=2)


# --------------------------------------------------------------------- end-to-end equality
@needs_fork
class TestProcessExecution:
    def test_process_matches_serial_bitwise(self):
        """The acceptance criterion: identical central model across modes."""
        results = {}
        for execution in ("serial", "process"):
            trainer = CrossbowTrainer(_config(execution))
            try:
                trainer.train()
                results[execution] = {
                    "center": trainer.central_model_vector(),
                    "weights": trainer.replica_bank.active_matrix().copy(),
                    "accuracy": trainer.evaluate(),
                }
            finally:
                trainer.close()
        np.testing.assert_array_equal(
            results["process"]["center"], results["serial"]["center"]
        )
        np.testing.assert_array_equal(
            results["process"]["weights"], results["serial"]["weights"]
        )
        assert results["process"]["accuracy"] == results["serial"]["accuracy"]

    def test_process_smoke_k2(self):
        """CI smoke: a short k=2 MLP run trains end to end under process mode."""
        trainer = CrossbowTrainer(_config("process", max_epochs=1))
        try:
            result = trainer.train()
            assert len(result.metrics.records) == 1
            assert np.isfinite(result.metrics.records[-1].train_loss)
            assert trainer.evaluate() > 0.5
        finally:
            trainer.close()

    def test_process_with_autotuner_resizes_pool(self):
        trainer = CrossbowTrainer(
            _config(
                "process",
                batch_size=8,
                replicas_per_gpu=1,
                max_replicas_per_gpu=4,
                auto_tune=True,
                auto_tune_interval=4,
                max_epochs=3,
                seed=3,
            )
        )
        try:
            result = trainer.train()
            assert len(result.metrics.records) == 3
            # The throughput model rewards more learners on this tiny model,
            # so the tuner grows beyond the single seed learner.
            assert len(trainer.learners) > 1
            assert len(trainer.replica_bank) == len(trainer.learners)
        finally:
            trainer.close()

    def test_easgd_process_matches_serial(self):
        centers = {}
        for execution in ("serial", "process"):
            trainer = CrossbowTrainer(
                _config(execution, synchronisation="easgd", max_epochs=1)
            )
            try:
                trainer.train()
                centers[execution] = trainer.central_model_vector()
            finally:
                trainer.close()
        np.testing.assert_array_equal(centers["process"], centers["serial"])

    def test_dead_worker_raises_instead_of_hanging(self):
        """A worker that dies without reporting must fail the step, not hang it."""
        from repro.errors import SchedulingError

        trainer = CrossbowTrainer(_config("process", max_epochs=1))
        try:
            trainer.train()
            executor = trainer._executor
            pool = executor._pool
            assert pool is not None and pool.is_alive()
            # Fresh epoch so the surviving worker has batches and reports fine;
            # the killed one simply never answers.
            executor.begin_epoch(1)
            pool._handles[0].process.terminate()
            pool._handles[0].process.join(timeout=10.0)
            with pytest.raises(SchedulingError, match="died without reporting"):
                pool.step()
        finally:
            trainer.close()

    def test_close_is_idempotent_and_allows_eval(self):
        trainer = CrossbowTrainer(_config("process", max_epochs=1))
        trainer.train()
        trainer.close()
        trainer.close()
        assert 0.0 <= trainer.evaluate() <= 1.0


def test_execution_knob_validated():
    with pytest.raises(ConfigurationError):
        _config(execution="threads")
