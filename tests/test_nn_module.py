"""Module container semantics: registration, state dicts, flat parameter views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential
from repro.nn.layers import BatchNorm1d
from repro.utils.rng import RandomState


class _TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=RandomState(0))
        self.act = ReLU()
        self.fc2 = Linear(3, 2, rng=RandomState(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_parameters_are_discovered_recursively(self):
        net = _TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_modules_are_discovered(self):
        net = _TinyNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_buffers_are_registered(self):
        bn = BatchNorm1d(5)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert sorted(buffer_names) == ["running_mean", "running_var"]

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), ReLU())
        net.eval()
        assert all(not module.training for module in net.modules())
        net.train()
        assert all(module.training for module in net.modules())


class TestStateDict:
    def test_state_dict_round_trip(self):
        net_a, net_b = _TinyNet(), _TinyNet()
        state = net_a.state_dict()
        net_b.load_state_dict(state)
        np.testing.assert_allclose(net_a.parameter_vector(), net_b.parameter_vector())

    def test_state_dict_copies_data(self):
        net = _TinyNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_unknown_key_raises(self):
        net = _TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nope": np.zeros(3)})

    def test_load_shape_mismatch_raises(self):
        net = _TinyNet()
        with pytest.raises(ValueError):
            net.load_state_dict({"fc1.weight": np.zeros((1, 1))})

    def test_buffers_round_trip_through_state_dict(self):
        bn_a, bn_b = BatchNorm1d(3), BatchNorm1d(3)
        bn_a.running_mean[...] = 7.0
        bn_b.load_state_dict(bn_a.state_dict())
        np.testing.assert_allclose(bn_b.running_mean, np.full(3, 7.0))


class TestFlatParameterView:
    def test_parameter_vector_round_trip(self):
        net = _TinyNet()
        vector = net.parameter_vector()
        assert vector.size == net.num_parameters()
        modified = vector + 1.0
        net.load_parameter_vector(modified)
        np.testing.assert_allclose(net.parameter_vector(), modified)

    def test_load_wrong_size_raises(self):
        net = _TinyNet()
        with pytest.raises(ValueError):
            net.load_parameter_vector(np.zeros(3))

    def test_gradient_vector_zero_when_no_grads(self):
        net = _TinyNet()
        grad = net.gradient_vector()
        assert grad.shape == (net.num_parameters(),)
        np.testing.assert_allclose(grad, 0.0)

    def test_parameter_bytes_is_four_bytes_per_weight(self):
        net = _TinyNet()
        assert net.parameter_bytes() == 4 * net.num_parameters()

    def test_clone_is_independent(self):
        net = _TinyNet()
        clone = net.clone()
        clone.fc1.weight.data[...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)
        np.testing.assert_allclose(clone.fc2.weight.data, net.fc2.weight.data)

    def test_zero_grad_clears_gradients(self):
        net = _TinyNet()
        for param in net.parameters():
            param.grad = np.ones_like(param.data)
        net.zero_grad()
        assert all(param.grad is None for param in net.parameters())


class TestSequential:
    def test_len_iteration_and_indexing(self):
        seq = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert len(list(iter(seq))) == 3

    def test_append(self):
        seq = Sequential(Linear(2, 2))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_parameter_is_tensor_requiring_grad(self):
        param = Parameter(np.zeros((2, 2)))
        assert param.requires_grad
