"""Kernel-provider microbenchmark: provider × hot-path op throughput.

The pluggable backend (:mod:`repro.tensor.backend`) routes the three dense
``(k, P)`` hot paths — the fused ``step_matrix`` synchronisation, the gradient
gather, and the batched-evaluation forward — to a registered kernel provider.
Providers are bit-identical by contract (``tests/test_backend.py`` pins the
floats), so this benchmark measures the only thing they may change: speed.
One row per ``provider × op`` with an ``ops_per_s`` throughput column feeds
the CI regression gate, so a provider silently losing its edge (or the
reference path regressing) fails the build like any other perf regression.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.optim import SMA, SMAConfig
from repro.tensor.backend import available_backends, get_backend

REPLICAS = 16
PARAMETERS = 65536
ITERATIONS = 60
SMOKE_ITERATIONS = 5

#: batched-evaluation workload: one conv + one linear layer at eval shapes
EVAL_BATCH = 64
CONV_FEATURES = 72  # in_channels * kh * kw
CONV_CHANNELS = 16
CONV_POSITIONS = 64  # oh * ow
LINEAR_IN = 256
LINEAR_OUT = 10


def _time_op(op, iterations: int) -> float:
    """Best-of-3 mean seconds per call (the op itself loops internally)."""
    op()  # warm-up: allocations, BLAS initialisation, einsum paths
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(iterations):
            op()
        best = min(best, (time.perf_counter() - started) / iterations)
    return best


def _step_matrix_op(provider: str):
    rng = np.random.default_rng(7)
    initial = rng.standard_normal(PARAMETERS).astype(np.float32)
    weights = np.tile(initial, (REPLICAS, 1))
    updates = (0.01 * rng.standard_normal((REPLICAS, PARAMETERS))).astype(np.float32)
    sma = SMA(initial, REPLICAS, SMAConfig(momentum=0.9), backend=provider)
    return lambda: sma.step_matrix(weights, updates)


def _gather_op(provider: str):
    backend = get_backend(provider)
    rng = np.random.default_rng(8)
    sizes = [4096] * 15 + [PARAMETERS - 15 * 4096]
    gradients = [rng.standard_normal(size).astype(np.float32) for size in sizes]
    gradients[3] = None  # one parameter without a gradient: the zero-fill path
    segments = list(zip(gradients, sizes))
    out = np.empty(PARAMETERS, dtype=np.float32)
    return lambda: backend.gather(iter(segments), out)


def _fused_forward_op(provider: str):
    backend = get_backend(provider)
    rng = np.random.default_rng(9)
    conv_weights = rng.standard_normal((REPLICAS, CONV_CHANNELS, CONV_FEATURES)).astype(
        np.float32
    )
    cols = rng.standard_normal((EVAL_BATCH, CONV_FEATURES, CONV_POSITIONS)).astype(np.float32)
    act = rng.standard_normal((EVAL_BATCH, LINEAR_IN)).astype(np.float32)
    linear_weights = rng.standard_normal((REPLICAS, LINEAR_IN, LINEAR_OUT)).astype(np.float32)
    bias = rng.standard_normal((REPLICAS, 1, LINEAR_OUT)).astype(np.float32)

    def op():
        conv_out = backend.batched_conv2d(conv_weights, cols)
        backend.relu(conv_out)
        return backend.batched_linear(act, linear_weights, bias)

    return op


_OPS = {
    "step_matrix": _step_matrix_op,
    "gather": _gather_op,
    "fused_forward": _fused_forward_op,
}


def _kernel_rows(iterations: int) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for op_name, build in _OPS.items():
        for provider in available_backends():
            seconds = _time_op(build(provider), iterations)
            rows.append(
                {
                    "op": op_name,
                    "provider": provider,
                    "k": REPLICAS,
                    "ms_per_call": round(1e3 * seconds, 4),
                    "ops_per_s": round(1.0 / seconds, 1),
                }
            )
    return rows


def test_kernel_backend_throughput(report):
    rows = _kernel_rows(ITERATIONS)
    report("kernel_backends", rows)
    # Sanity, not a perf gate (that is check_bench_regression's job): every
    # registered provider produced a finite positive throughput on every op.
    assert len(rows) == len(_OPS) * len(available_backends())
    for row in rows:
        assert row["ops_per_s"] > 0.0


# ----------------------------------------------------------------------- CLI / smoke
def main(argv: Optional[List[str]] = None) -> int:
    import conftest

    args = conftest.bench_cli(__doc__, argv)
    iterations = SMOKE_ITERATIONS if args.smoke else ITERATIONS
    rows = _kernel_rows(iterations)
    conftest.standalone_report("kernel_backends_smoke" if args.smoke else "kernel_backends", rows)
    providers = ", ".join(available_backends())
    print(f"ok: {len(rows)} provider×op rows measured ({providers})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
