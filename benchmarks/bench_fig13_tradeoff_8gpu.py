"""Figure 13: hardware/statistical efficiency trade-off on 8 GPUs (ResNet-32).

Expected shape (paper): with 8 GPUs, m=2 gives the best trade-off — higher
throughput than m=1 without noticeably hurting statistical efficiency; pushing
to m=4 (32 learners in total) stops paying off because synchronisation overhead
grows and the extra replicas remove useful gradient noise.
"""

from __future__ import annotations

from repro.experiments import run_fig12_fig13_tradeoff


def test_fig13_tradeoff_eight_gpus(benchmark, report):
    rows = benchmark.pedantic(
        run_fig12_fig13_tradeoff,
        kwargs={"num_gpus": 8, "replica_counts": (1, 2, 4), "max_epochs": 10},
        rounds=1,
        iterations=1,
    )
    report("fig13_tradeoff_8gpu", rows)

    by_system = {row["system"]: row for row in rows}
    # m=2 should improve throughput over m=1.
    assert (
        by_system["crossbow-m2"]["throughput_img_s"]
        > by_system["crossbow-m1"]["throughput_img_s"]
    )
    # Statistical efficiency degrades once 8 GPUs x 4 learners = 32 replicas
    # share the averaging process: within the same epoch budget the m=4
    # configuration ends up with a worse model than m=2 (the paper's reason why
    # m=2 is the sweet spot at 8 GPUs).
    assert by_system["crossbow-m4"]["best_accuracy"] < by_system["crossbow-m2"]["best_accuracy"]
    # Among the Crossbow configurations that reached the target, m=2 has the
    # lowest time-to-accuracy.
    reached = {
        name: row["tta_seconds"]
        for name, row in by_system.items()
        if name.startswith("crossbow") and row["tta_seconds"] is not None
    }
    if "crossbow-m2" in reached:
        assert reached["crossbow-m2"] == min(reached.values())
