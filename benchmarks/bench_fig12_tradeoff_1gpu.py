"""Figure 12: hardware/statistical efficiency trade-off on 1 GPU (ResNet-32).

Expected shape (paper): with a single GPU, increasing the number of learners
per GPU raises throughput (until the GPU saturates) *and* reduces the epochs
needed to converge, so time-to-accuracy improves markedly over both Crossbow
m=1 and the S-SGD baseline.
"""

from __future__ import annotations

from repro.experiments import run_fig12_fig13_tradeoff


def test_fig12_tradeoff_one_gpu(benchmark, report):
    rows = benchmark.pedantic(
        run_fig12_fig13_tradeoff,
        kwargs={"num_gpus": 1, "replica_counts": (1, 2, 4), "max_epochs": 10},
        rounds=1,
        iterations=1,
    )
    report("fig12_tradeoff_1gpu", rows)

    by_system = {row["system"]: row for row in rows}
    # Hardware efficiency: more learners per GPU means higher throughput.
    assert (
        by_system["crossbow-m4"]["throughput_img_s"]
        > by_system["crossbow-m1"]["throughput_img_s"]
    )
    # TTA with m>1 should be no worse than with m=1 when both reached the target.
    m1, m4 = by_system["crossbow-m1"]["tta_seconds"], by_system["crossbow-m4"]["tta_seconds"]
    if m1 is not None and m4 is not None:
        assert m4 <= m1 * 1.1
