"""Figure 10: time-to-accuracy of TensorFlow-style S-SGD vs Crossbow.

For the ResNet-32 workload, sweeps the number of GPUs and compares three
systems: the S-SGD baseline, Crossbow with one learner per GPU and Crossbow
with the best number of learners per GPU.  Expected shape (paper): Crossbow's
TTA is comparable to or better than the baseline at small GPU counts and
clearly better at 8 GPUs, with multiple learners per GPU giving the largest
reduction.
"""

from __future__ import annotations

from repro.experiments import run_fig10_time_to_accuracy


def test_fig10_time_to_accuracy_resnet32(benchmark, report):
    rows = benchmark.pedantic(
        run_fig10_time_to_accuracy,
        kwargs={
            "models": ("resnet32",),
            "gpu_counts": (1, 8),
            "best_replicas": 2,
            "max_epochs": 10,
        },
        rounds=1,
        iterations=1,
    )
    report("fig10_time_to_accuracy", rows)

    def tta(system, gpus):
        for row in rows:
            if row["system"] == system and row["gpus"] == gpus:
                return row["tta_seconds"]
        return None

    # Crossbow with multiple learners should beat the baseline on 8 GPUs when
    # both reach the target within the epoch budget.
    baseline = tta("tensorflow-ssgd", 8)
    crossbow = tta("crossbow-m2", 8)
    if baseline is not None and crossbow is not None:
        assert crossbow < baseline
