"""Replica-bank microbenchmark: fused (k, P) SMA step vs the per-learner loop.

The seed engine paid a per-learner Python loop with a full flatten/unflatten of
every replica's parameter vector on every iteration — exactly the
synchronisation overhead the paper's contiguous data layout eliminates (§4.4).
This benchmark times one SMA iteration both ways at k = 8..32 learners on
ResNet-32 (scaled) and checks the two implementations produce the same weights.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.engine import ModelReplica, ReplicaBank
from repro.models import create_model
from repro.optim import SMA, SMAConfig
from repro.utils.rng import RandomState

MODEL = "resnet32-scaled"
LEARNER_COUNTS = (8, 16, 32)
ITERATIONS = 30
LEARNING_RATE = 0.1


def _replicas(k: int) -> List[ModelReplica]:
    model = create_model(MODEL, rng=RandomState(7, name="bench-bank"))
    return [ModelReplica(j, model.clone(), gpu_id=0, stream_id=j) for j in range(k)]


def _gradients(k: int, p: int) -> np.ndarray:
    rng = np.random.default_rng(99)
    return (0.01 * rng.normal(size=(k, p))).astype(np.float32)


def _run_per_learner_loop(k: int, iterations: int) -> Dict[str, object]:
    """The seed trainer's hot path: vector() / correction / load_vector per learner."""
    replicas = _replicas(k)
    p = replicas[0].num_parameters()
    center = replicas[0].vector()
    sma = SMA(center, k, SMAConfig(momentum=0.9))
    gradients = _gradients(k, p)
    started = time.perf_counter()
    for _ in range(iterations):
        corrections: List[np.ndarray] = []
        for j, replica in enumerate(replicas):
            weights = replica.vector()
            scaled_gradient = LEARNING_RATE * gradients[j]
            correction = sma.correction(weights)
            replica.load_vector(weights - (scaled_gradient + correction))
            corrections.append(correction)
        sma.apply_corrections(corrections)
    elapsed = time.perf_counter() - started
    return {
        "seconds_per_iteration": elapsed / iterations,
        "weights": np.stack([replica.vector() for replica in replicas]),
        "center": sma.center.copy(),
    }


def _run_fused_bank(k: int, iterations: int) -> Dict[str, object]:
    """The replica-bank path: one fused (k, P) matrix update per iteration."""
    replicas = _replicas(k)
    p = replicas[0].num_parameters()
    center = replicas[0].vector()
    bank = ReplicaBank(p, capacity=k)
    for replica in replicas:
        bank.attach(replica)
    sma = SMA(center, k, SMAConfig(momentum=0.9))
    gradients = _gradients(k, p)
    updates = np.empty_like(gradients)
    started = time.perf_counter()
    for _ in range(iterations):
        np.multiply(gradients, LEARNING_RATE, out=updates)
        sma.step_matrix(bank.active_matrix(), updates)
    elapsed = time.perf_counter() - started
    return {
        "seconds_per_iteration": elapsed / iterations,
        "weights": bank.active_matrix().copy(),
        "center": sma.center.copy(),
    }


def test_replica_bank_speedup(report):
    rows = []
    speedups: Dict[int, float] = {}
    for k in LEARNER_COUNTS:
        # Warm up both paths once so allocator effects don't skew the timing.
        _run_per_learner_loop(k, 2)
        _run_fused_bank(k, 2)
        # Best-of-3 timing keeps the ratio robust to noisy-neighbour CI runners;
        # both paths are deterministic, so any run pair works for the
        # bit-compatibility check.
        loop_runs = [_run_per_learner_loop(k, ITERATIONS) for _ in range(3)]
        fused_runs = [_run_fused_bank(k, ITERATIONS) for _ in range(3)]
        loop, fused = loop_runs[0], fused_runs[0]

        # Bit-compatibility: both paths must land on the same replica weights
        # and central model after identical iterations from identical inputs.
        np.testing.assert_allclose(fused["weights"], loop["weights"], atol=1e-6)
        np.testing.assert_allclose(fused["center"], loop["center"], atol=1e-6)

        loop_time = min(run["seconds_per_iteration"] for run in loop_runs)
        fused_time = min(run["seconds_per_iteration"] for run in fused_runs)
        speedup = loop_time / fused_time
        speedups[k] = speedup
        rows.append(
            {
                "model": MODEL,
                "learners": k,
                "loop_ms_per_iter": round(1e3 * loop_time, 4),
                "fused_ms_per_iter": round(1e3 * fused_time, 4),
                "speedup": round(speedup, 2),
            }
        )
    report("replica_bank_speedup", rows)

    # The fused matrix step must beat the per-learner loop by >= 3x at k = 16.
    assert speedups[16] >= 3.0, f"fused SMA step only {speedups[16]:.2f}x faster at k=16"
    for k in LEARNER_COUNTS:
        assert speedups[k] > 1.0
