"""Figure 16: effect of the synchronisation frequency τ on time-to-accuracy.

Crossbow synchronises replicas with the average model every iteration (τ=1).
Expected shape (paper): raising τ buys a little extra throughput but hurts
convergence, so TTA is minimised at τ=1.
"""

from __future__ import annotations

from repro.experiments import run_fig16_sync_frequency


def test_fig16_sync_frequency(benchmark, report):
    rows = benchmark.pedantic(
        run_fig16_sync_frequency,
        kwargs={
            "model": "resnet32",
            "num_gpus": 8,
            "replicas_per_gpu": 2,
            "periods": (1, 2, 4),
            "max_epochs": 10,
        },
        rounds=1,
        iterations=1,
    )
    report("fig16_sync_frequency_tta", rows)

    by_tau = {row["tau"]: row for row in rows}
    # Throughput is monotone (weakly) in τ: synchronising less often cannot slow us down.
    assert by_tau[4]["throughput_img_s"] >= by_tau[1]["throughput_img_s"] * 0.99
    # Statistical efficiency: τ=1 should reach the best accuracy of the sweep.
    best_acc = max(row["best_accuracy"] for row in rows)
    assert by_tau[1]["best_accuracy"] >= best_acc - 0.05
