"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§5).  The rows are printed (run pytest with ``-s`` to see them), persisted
as CSV under ``benchmarks/results/`` so they can be compared against the paper
in EXPERIMENTS.md, and merged into ``benchmarks/results/BENCH_summary.json``
— the machine-readable per-commit performance record the CI jobs upload as an
artifact (via :func:`repro.experiments.record_bench_summary`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Sequence

import pytest

from repro.experiments import format_table, record_bench_summary, save_rows

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = RESULTS_DIR / "BENCH_summary.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir) -> Callable[[str, Sequence[Dict[str, object]]], None]:
    """Print a figure's rows; persist them as CSV and into the JSON summary."""

    def _report(name: str, rows: Sequence[Dict[str, object]]) -> None:
        rows = list(rows)
        print(f"\n=== {name} ===")
        print(format_table(rows))
        save_rows(rows, results_dir / f"{name}.csv")
        record_bench_summary(SUMMARY_PATH, name, rows)

    return _report
