"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§5).  The rows are printed (run pytest with ``-s`` to see them) and persisted
as CSV under ``benchmarks/results/`` so they can be compared against the paper
in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Sequence

import pytest

from repro.experiments import format_table, save_rows

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir) -> Callable[[str, Sequence[Dict[str, object]]], None]:
    """Print a figure's rows and persist them as CSV."""

    def _report(name: str, rows: Sequence[Dict[str, object]]) -> None:
        rows = list(rows)
        print(f"\n=== {name} ===")
        print(format_table(rows))
        save_rows(rows, results_dir / f"{name}.csv")

    return _report
