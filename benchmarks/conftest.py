"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(§5).  The rows are printed (run pytest with ``-s`` to see them), persisted
as CSV under ``benchmarks/results/`` so they can be compared against the paper
in EXPERIMENTS.md, and merged into ``benchmarks/results/BENCH_summary.json``
— the machine-readable per-commit performance record the CI jobs upload as an
artifact (via :func:`repro.experiments.record_bench_summary`).

Telemetry is *enabled* for every bench run (pytest and standalone): the
gated throughput numbers are measured with the recorder live, so the 25%
regression gate doubles as the bound on instrumentation overhead in the
trainer and serving hot paths.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import pytest

from repro.experiments import format_table, record_bench_summary, save_rows
from repro.telemetry.recorder import configure as configure_telemetry

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = RESULTS_DIR / "BENCH_summary.json"


@pytest.fixture(scope="session", autouse=True)
def _telemetry_enabled():
    """Benches measure with the recorder on (see the module docstring)."""
    configure_telemetry(enabled=True)
    yield
    configure_telemetry(enabled=False)


def bench_cli(
    description: Optional[str], argv: Optional[Sequence[str]] = None
) -> argparse.Namespace:
    """The shared standalone-bench command line: ``--smoke`` and ``--seed``.

    Every bench script's ``main()`` parses the same two flags (smoke = tiny
    workload, sanity assertions only, no perf gates; seed = workload RNG
    seed), so the flags live here once.  Bench scripts import this module by
    its file name (``import conftest``), which works because the script's own
    directory is ``sys.path[0]`` when run standalone — the import must stay
    inside ``main()`` so pytest collection never touches it.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, sanity assertions only, no perf gates",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed (default 0)"
    )
    configure_telemetry(enabled=True)
    return parser.parse_args(argv)


def standalone_report(name: str, rows: Sequence[Dict[str, object]]) -> None:
    """The ``report`` fixture's behaviour for standalone (non-pytest) runs.

    Prints the rows and merges them into ``BENCH_summary.json`` under
    ``name``, so a CI job invoking ``python benchmarks/bench_*.py --smoke``
    still produces the artifact the regression gate reads.
    """
    rows = list(rows)
    print(f"\n=== {name} ===")
    print(format_table(rows))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_rows(rows, RESULTS_DIR / f"{name}.csv")
    record_bench_summary(SUMMARY_PATH, name, rows)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir) -> Callable[[str, Sequence[Dict[str, object]]], None]:
    """Print a figure's rows; persist them as CSV and into the JSON summary."""

    def _report(name: str, rows: Sequence[Dict[str, object]]) -> None:
        rows = list(rows)
        print(f"\n=== {name} ===")
        print(format_table(rows))
        save_rows(rows, results_dir / f"{name}.csv")
        record_bench_summary(SUMMARY_PATH, name, rows)

    return _report
