"""Multi-process executor microbenchmark: serial vs per-learner worker processes.

PR 1 fused the synchronisation step into one (k, P) matrix op, but the k
forward/backward passes of an iteration still ran serially in one Python
process.  With ``execution="process"`` each learner's gradient is computed in
its own worker over the shared-memory replica bank while streaming its own
dataset shard — the reproduction's analogue of the paper's task manager
keeping every execution unit busy (§4.1–§4.3).

This benchmark times whole training iterations (gradients + fused SMA step +
simulated schedule) both ways at k = 8 learners on an MLP workload sized so
the gradient computation dominates, and records the speedup.  On a single-core
host the process mode necessarily loses (same compute plus IPC), so the
speedup assertion only applies on multi-core hosts, matching the paper's
premise of parallel hardware.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import numpy as np

from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported

LEARNERS = 8
EPOCHS = 3
HIDDEN = (512, 256)
INPUT_DIM = 64
NUM_TRAIN = 4096
BATCH_SIZE = 32
MIN_CORES_FOR_ASSERT = 4
TARGET_SPEEDUP = 1.5


def _config(execution: str) -> CrossbowConfig:
    return CrossbowConfig(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=BATCH_SIZE,
        replicas_per_gpu=LEARNERS,
        max_epochs=EPOCHS,
        seed=7,
        execution=execution,
        dataset_overrides={"num_train": NUM_TRAIN, "num_test": 256, "input_dim": INPUT_DIM},
        model_overrides={"input_dim": INPUT_DIM, "hidden_sizes": HIDDEN},
    )


def _run(execution: str) -> Dict[str, object]:
    trainer = CrossbowTrainer(_config(execution))
    try:
        # Warm-up epoch: spawns the worker pool (process mode) and touches
        # every allocation, so the timed epochs measure steady-state behaviour.
        trainer._apply_schedule(0)
        trainer._train_epoch(0)
        warmup_iterations = trainer._iteration
        started = time.perf_counter()
        for epoch in range(1, EPOCHS):
            trainer._train_epoch(epoch)
        elapsed = time.perf_counter() - started
        iterations = trainer._iteration - warmup_iterations
        return {
            "iterations": iterations,
            "seconds": elapsed,
            "iter_per_s": iterations / elapsed if elapsed > 0 else float("inf"),
            "center": trainer.central_model_vector(),
        }
    finally:
        trainer.close()


def test_multiprocess_throughput(report):
    if not process_execution_supported():  # pragma: no cover - non-POSIX only
        import pytest

        pytest.skip("fork start method unavailable")

    serial = _run("serial")
    process = _run("process")

    # Both modes must land on the identical central model (fixed seed, no
    # augmentation) — the speedup is not allowed to change the maths.
    np.testing.assert_array_equal(process["center"], serial["center"])

    speedup = process["iter_per_s"] / serial["iter_per_s"]
    cores = os.cpu_count() or 1
    report(
        "multiprocess_throughput",
        [
            {
                "mode": mode,
                "learners": LEARNERS,
                "iterations": run["iterations"],
                "seconds": round(float(run["seconds"]), 4),
                "iter_per_s": round(float(run["iter_per_s"]), 2),
                "cores": cores,
                "speedup_vs_serial": round(float(run["iter_per_s"] / serial["iter_per_s"]), 2),
            }
            for mode, run in (("serial", serial), ("process", process))
        ],
    )

    # The >1.5x acceptance bar presumes parallel hardware; on one or two
    # cores the extra processes only add IPC, so just record the numbers.
    # BENCH_STRICT=0 downgrades the assert to a report for shared/noisy
    # runners (CI), where wall-clock ratios across processes are not stable.
    strict = os.environ.get("BENCH_STRICT", "1") != "0"
    if cores >= MIN_CORES_FOR_ASSERT and strict:
        assert speedup > TARGET_SPEEDUP, (
            f"process execution only {speedup:.2f}x faster at k={LEARNERS} "
            f"on {cores} cores (target {TARGET_SPEEDUP}x)"
        )
