"""Figure 3: statistical efficiency of S-SGD as the batch size grows.

Epochs needed to reach a target accuracy for increasing batch sizes (ResNet-32
workload).  Expected shape (paper): the epoch count is flat-ish for small
batches and grows super-linearly beyond a threshold — large batches need more
passes over the data to converge.
"""

from __future__ import annotations

from repro.experiments import run_fig3_statistical_efficiency, workload_for_model


def test_fig3_statistical_efficiency(benchmark, report):
    workload = workload_for_model("resnet32")
    rows = benchmark.pedantic(
        run_fig3_statistical_efficiency,
        kwargs={
            "batch_sizes": (16, 64, 192),
            "target_accuracy": 0.80,
            "workload": workload,
        },
        rounds=1,
        iterations=1,
    )
    report("fig03_stat_efficiency", rows)

    by_batch = {row["batch_size"]: row for row in rows}
    reached = [b for b, row in by_batch.items() if row["epochs_to_target"] is not None]
    # Small batches must converge within the epoch budget.
    assert 16 in reached
    # Epochs-to-accuracy should not decrease as the batch grows (when both reached).
    if by_batch[16]["epochs_to_target"] and by_batch[192]["epochs_to_target"]:
        assert by_batch[192]["epochs_to_target"] >= by_batch[16]["epochs_to_target"]
