"""Figure 14: varying the number of model replicas per GPU.

Sweeps m for the ResNet-32 workload on one GPU and reports TTA plus the
throughput improvement over m=1.  Expected shape (paper): the m that saturates
training throughput is also the m that minimises TTA — which is exactly the
signal the auto-tuner uses.
"""

from __future__ import annotations

from repro.experiments import run_fig14_learner_sweep


def test_fig14_learner_sweep(benchmark, report):
    rows = benchmark.pedantic(
        run_fig14_learner_sweep,
        kwargs={"model": "resnet32", "num_gpus": 1, "replica_counts": (1, 2, 4), "max_epochs": 10},
        rounds=1,
        iterations=1,
    )
    report("fig14_learner_sweep", rows)

    throughput = {row["replicas_per_gpu"]: row["throughput_img_s"] for row in rows}
    improvements = {row["replicas_per_gpu"]: row["throughput_improvement_pct"] for row in rows}
    assert improvements[1] == 0.0
    assert throughput[2] > throughput[1]

    # The auto-tuner's premise: the configuration with the highest throughput
    # has a TTA within a few percent of the best TTA observed in the sweep
    # (saturating throughput is a reliable proxy for minimising TTA).
    with_tta = [row for row in rows if row["tta_seconds"] is not None]
    if with_tta:
        best_tta = min(row["tta_seconds"] for row in with_tta)
        fastest = max(with_tta, key=lambda row: row["throughput_img_s"])
        assert fastest["tta_seconds"] <= 1.05 * best_tta
