"""Ablation (beyond the paper's figures): the cost of asynchrony (§2.3).

The paper motivates synchronous training by the statistical-efficiency loss of
asynchronous SGD's stale gradients.  This benchmark runs the A-SGD model on a
noisy quadratic objective with increasing expected staleness and reports the
distance to the optimum after a fixed update budget: staleness should hurt
monotonically, and the zero-staleness case should match plain SGD.
"""

from __future__ import annotations

import numpy as np

from repro.optim import ASGD, StalenessModel
from repro.utils.rng import RandomState


def _run_asgd_sweep(staleness_levels=(0.0, 4.0, 16.0), updates=120, dimensions=16):
    target = np.full(dimensions, 2.5, dtype=np.float32)
    rows = []
    for level in staleness_levels:
        asgd = ASGD(
            np.zeros(dimensions, dtype=np.float32),
            num_workers=8,
            learning_rate=0.15,
            staleness=StalenessModel(8, expected_staleness=level, jitter=0.0),
            seed=3,
        )
        noise = RandomState(9, name=f"asgd-{level}")
        for _ in range(updates):
            snapshot = asgd.snapshot_for_worker()
            gradient = (snapshot - target) + noise.normal(scale=0.1, size=dimensions).astype(
                np.float32
            )
            asgd.apply_gradient(gradient)
        rows.append(
            {
                "expected_staleness": level,
                "observed_staleness": round(asgd.mean_observed_staleness(), 2),
                "distance_to_optimum": round(float(np.linalg.norm(asgd.center - target)), 4),
                "updates": updates,
            }
        )
    return rows


def test_ablation_asynchrony_staleness(benchmark, report):
    rows = benchmark.pedantic(_run_asgd_sweep, rounds=1, iterations=1)
    report("ablation_asynchrony", rows)

    by_level = {row["expected_staleness"]: row["distance_to_optimum"] for row in rows}
    # Stale gradients slow convergence monotonically (the §2.3 argument for
    # synchronous training).
    assert by_level[0.0] <= by_level[4.0] <= by_level[16.0]
