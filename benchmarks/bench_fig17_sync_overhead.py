"""Figure 17: cost of the synchronisation implementation (hardware only).

Measures training throughput on 8 GPUs for τ ∈ {1, 2, 3, ∞} and m ∈ {1, 2, 4}.
Expected shape (paper): removing synchronisation entirely (τ=∞) only improves
throughput by a modest 20–30%, showing that the overlapped, hierarchical
synchronisation implementation is not a bottleneck.
"""

from __future__ import annotations

from repro.experiments import run_fig17_sync_overhead


def test_fig17_sync_overhead(benchmark, report):
    rows = benchmark.pedantic(
        run_fig17_sync_overhead,
        kwargs={
            "model": "resnet32",
            "num_gpus": 8,
            "replica_counts": (1, 2, 4),
            "periods": (1, 2, 3, None),
            "batch_size": 64,
            "iterations": 50,
        },
        rounds=1,
        iterations=1,
    )
    report("fig17_sync_overhead", rows)

    def throughput(replicas, tau):
        for row in rows:
            if row["replicas_per_gpu"] == replicas and row["tau"] == tau:
                return row["throughput_img_s"]
        raise AssertionError("missing row")

    for replicas in (1, 2, 4):
        with_sync = throughput(replicas, 1)
        without_sync = throughput(replicas, "inf")
        assert without_sync >= with_sync
        # The §5.6 claim: synchronisation costs well under ~35% of throughput.
        assert without_sync <= 1.35 * with_sync
