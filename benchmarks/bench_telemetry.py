"""Telemetry recorder overhead microbenchmarks.

The emission layer's contract (``repro.telemetry.recorder``) is that
instrumented hot paths stay hot:

* **Disabled no-op path** — a disabled recorder returns after one attribute
  check, and ``span()`` hands back one shared no-op context manager.  The
  cost per call must be of the same order as calling an empty method, i.e.
  ~zero against any loop that does real work.  Asserted here with a generous
  absolute bound so the instrumentation sprinkled through the trainer and
  server can never become the bottleneck when telemetry is off (the default).
* **Enabled buffered path** — one GIL-atomic ``list.append`` per event, no
  locks or I/O; measured for the record, and bounded loosely (it runs on
  shared CI machines).

Column names deliberately avoid the regression gate's throughput pattern
(``ns_per_op`` etc.): these are latency floors, not tracked throughput.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.telemetry.recorder import Recorder

OPS = 200_000
#: generous ceilings for shared CI runners; locally these run ~10x under
DISABLED_NS_CEILING = 1_000.0
ENABLED_NS_CEILING = 25_000.0


def _strict() -> bool:
    return os.environ.get("BENCH_STRICT", "1") != "0"


def _ns_per_op(fn, ops: int) -> float:
    started = time.perf_counter()
    for _ in range(ops):
        fn()
    return (time.perf_counter() - started) / ops * 1e9


def _measure(ops: int = OPS) -> List[Dict[str, object]]:
    disabled = Recorder(enabled=False)
    enabled = Recorder(enabled=True, run_id="bench-telemetry")

    class _Baseline:
        """An empty method call: the floor any emit path is compared against."""

        def noop(self) -> None:
            return None

    baseline_ns = _ns_per_op(_Baseline().noop, ops)
    disabled_counter_ns = _ns_per_op(lambda: disabled.counter("bench.tick"), ops)
    disabled_span_ns = _ns_per_op(lambda: disabled.span("bench.block").__enter__(), ops)
    enabled_gauge_ns = _ns_per_op(lambda: enabled.gauge("bench.value", 1.0), ops)
    buffered = len(enabled)
    enabled.drain()

    return [
        {
            "mode": "baseline_empty_method",
            "ops": ops,
            "ns_per_op": round(baseline_ns, 1),
            "events_buffered": 0,
        },
        {
            "mode": "disabled_counter",
            "ops": ops,
            "ns_per_op": round(disabled_counter_ns, 1),
            "events_buffered": 0,
        },
        {
            "mode": "disabled_span_enter",
            "ops": ops,
            "ns_per_op": round(disabled_span_ns, 1),
            "events_buffered": 0,
        },
        {
            "mode": "enabled_gauge",
            "ops": ops,
            "ns_per_op": round(enabled_gauge_ns, 1),
            "events_buffered": buffered,
        },
    ]


def _check(rows: List[Dict[str, object]]) -> List[str]:
    """The microbench's assertions, shared by the pytest and CLI paths."""
    by_mode = {str(row["mode"]): row for row in rows}
    failures: List[str] = []
    disabled = float(by_mode["disabled_counter"]["ns_per_op"])
    span = float(by_mode["disabled_span_enter"]["ns_per_op"])
    enabled_row = by_mode["enabled_gauge"]
    if disabled > DISABLED_NS_CEILING:
        failures.append(
            f"disabled counter costs {disabled:.0f} ns/op "
            f"(ceiling {DISABLED_NS_CEILING:.0f}); the no-op path is not a no-op"
        )
    if span > DISABLED_NS_CEILING:
        failures.append(
            f"disabled span costs {span:.0f} ns/op "
            f"(ceiling {DISABLED_NS_CEILING:.0f}); _NULL_SPAN is being bypassed"
        )
    if float(enabled_row["ns_per_op"]) > ENABLED_NS_CEILING:
        failures.append(
            f"enabled gauge costs {enabled_row['ns_per_op']} ns/op "
            f"(ceiling {ENABLED_NS_CEILING:.0f}); the buffered path grew I/O or locks"
        )
    if int(enabled_row["events_buffered"]) != int(enabled_row["ops"]):
        failures.append("enabled recorder lost events while buffering")
    return failures


def test_recorder_overhead(report):
    rows = _measure()
    report("telemetry_overhead", rows)
    failures = _check(rows)
    if _strict():
        assert not failures, "; ".join(failures)


# ----------------------------------------------------------------------- CLI / smoke
def main(argv: Optional[List[str]] = None) -> int:
    """Standalone recorder-overhead check (the CI smoke path)."""
    import sys

    import conftest

    args = conftest.bench_cli(__doc__, argv)
    ops = 20_000 if args.smoke else OPS
    rows = _measure(ops)
    conftest.standalone_report(
        "telemetry_overhead_smoke" if args.smoke else "telemetry_overhead_cli", rows
    )
    failures = _check(rows)
    if failures and _strict():
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    by_mode = {str(row["mode"]): row for row in rows}
    print(
        f"ok: disabled counter {by_mode['disabled_counter']['ns_per_op']} ns/op, "
        f"enabled gauge {by_mode['enabled_gauge']['ns_per_op']} ns/op "
        f"over {ops} ops"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
