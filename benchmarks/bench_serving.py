"""Serving-plane benchmark: micro-batched inference, off-path and pooled evaluation.

Five measurements of the `repro.serve` subsystem:

* **Micro-batching** — a closed-loop load generator (many client threads,
  single-sample requests) drives the :class:`~repro.serve.inference.InferenceServer`
  once with ``max_batch_size=1`` (no coalescing — the baseline every naive
  model server starts from) and once with micro-batching enabled.  Coalescing
  amortises the per-forward-pass Python/framework overhead across requests,
  the serving-side dual of the paper's "small batches waste hardware"
  observation; the run asserts ≥ 2x request throughput at bounded p99.

* **Off-path evaluation** — a k=8 training run with an attached
  :class:`~repro.serve.evaluation.EvaluationService` must spend about the
  same time in the training loop as a run that never evaluates
  (``evaluate_every_epochs=0``), because snapshots are published and
  evaluated off the critical path — while, after the ``drain()`` barrier,
  reporting accuracies bit-identical to inline evaluation.

* **Evaluator-pool scaling** — the same batch of checkpoints evaluated
  through an :class:`~repro.serve.pool.EvaluatorPool` with 1 worker (the
  PR-3 single forked evaluator) and with 4 workers sharing the slot ring;
  on a ≥ 4-core host the 4-worker pool must deliver ≥ 2x evaluation
  throughput, and accuracies are asserted bit-identical to inline either way.

* **Batched evaluation** — 8 checkpoint versions loaded into a ``(k, P)``
  replica bank and evaluated in one fused forward
  (:class:`~repro.serve.pool.BatchedEvaluator`) versus 8 sequential
  `evaluate_top1` passes: the fused pass must beat sequential (it amortises
  the per-batch Python overhead across versions even on one core) while
  producing the same accuracies.

* **Inference-pool scaling** — the same stream of request batches pushed
  through an :class:`~repro.serve.scaling.InferencePool` with 1 active
  worker and with 4 workers claiming from the shared request slot ring; on
  a ≥ 4-core host the 4-worker pool must deliver ≥ 2x sample throughput,
  and the logits are asserted bit-identical to an inline forward either way
  (concurrency reorders completions, never a result).

Run under pytest for CSV reporting, or standalone for the CI smoke check:

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported
from repro.models import create_model
from repro.nn.metrics import evaluate_top1
from repro.tensor.tensor import Tensor, no_grad
from repro.serve import (
    BatchedEvaluator,
    Checkpoint,
    EvaluationService,
    EvaluatorPool,
    InferencePool,
    InferenceServer,
)
from repro.utils.rng import RandomState

# Serving model: heavy enough that the forward pass dominates the fixed
# per-request cost (queue hop, future resolution) — the regime where
# coalescing pays, as it does for any real model.
SERVE_INPUT_DIM = 256
SERVE_HIDDEN = (1024, 1024, 512)
NUM_CLASSES = 10
NUM_CLIENTS = 32
REQUESTS_PER_CLIENT = 16  # 512 requests total in the full run
SMOKE_REQUESTS_PER_CLIENT = 4  # ~128 requests for --smoke
MAX_LATENCY_MS = 1.0
MICRO_BATCH = 32
TARGET_SPEEDUP = 2.0
P99_BOUND_MS = 500.0

# Training workload for the off-path evaluation comparison (k=8 learners).
TRAIN_INPUT_DIM = 128
TRAIN_HIDDEN = (256, 256)
TRAIN_LEARNERS = 8
TRAIN_EPOCHS = 3
TRAIN_DATASET = {
    "num_train": 2048,
    "num_test": 2048,
    "input_dim": TRAIN_INPUT_DIM,
    # keep accuracies off the 100% ceiling so the bit-identical comparison
    # between inline and drained off-path accuracies is non-trivial
    "noise_scale": 8.0,
}
MIN_CORES_FOR_ASSERT = 4  # off-path evaluation needs a spare core to overlap
LOOP_OVERHEAD_TOLERANCE = 1.25  # "within noise" bound vs the no-eval loop


def _model():
    return create_model(
        "mlp",
        rng=RandomState(3),
        input_dim=SERVE_INPUT_DIM,
        num_classes=NUM_CLASSES,
        hidden_sizes=SERVE_HIDDEN,
    )


def _strict() -> bool:
    return os.environ.get("BENCH_STRICT", "1") != "0"


# ----------------------------------------------------------------- micro-batching load
def serve_workload(
    max_batch_size: int,
    requests_per_client: int = REQUESTS_PER_CLIENT,
    num_clients: int = NUM_CLIENTS,
) -> Dict[str, float]:
    """Closed-loop load test: every client thread sends single-sample requests."""
    model = _model()
    samples = RandomState(11).normal(size=(num_clients, 1, 1, 1, SERVE_INPUT_DIM)).astype(
        np.float32
    )
    errors: List[BaseException] = []
    server = InferenceServer(
        model, max_batch_size=max_batch_size, max_latency_ms=MAX_LATENCY_MS
    )
    with server:
        # Warm the forward pass so the timed window measures steady state.
        server.predict(samples[0])

        def client(j: int) -> None:
            try:
                for _ in range(requests_per_client):
                    server.predict(samples[j], timeout=120.0)
            except BaseException as exc:  # noqa: BLE001 - surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(j,), name=f"client-{j}")
            for j in range(num_clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    summary = server.stats.summary()
    total = num_clients * requests_per_client
    summary["throughput_req_s"] = total / elapsed  # timed window only (no warm-up)
    summary["requests"] = total
    return summary


def _microbatching_rows(requests_per_client: int) -> List[Dict[str, object]]:
    rows = []
    for max_batch in (1, MICRO_BATCH):
        summary = serve_workload(max_batch, requests_per_client=requests_per_client)
        rows.append(
            {
                "max_batch_size": max_batch,
                "requests": summary["requests"],
                "batches": summary["batches"],
                "mean_batch_size": round(summary["mean_batch_size"], 2),
                "p50_ms": round(summary["p50_ms"], 3),
                "p99_ms": round(summary["p99_ms"], 3),
                "throughput_req_s": round(summary["throughput_req_s"], 1),
            }
        )
    baseline, micro = rows
    micro["speedup_vs_batch1"] = round(
        micro["throughput_req_s"] / baseline["throughput_req_s"], 2
    )
    baseline["speedup_vs_batch1"] = 1.0
    return rows


def test_serving_microbatching(report):
    rows = _microbatching_rows(REQUESTS_PER_CLIENT)
    report("serving_microbatching", rows)
    baseline, micro = rows
    assert micro["mean_batch_size"] > 1.5, "coalescing never happened"
    if _strict():
        assert micro["speedup_vs_batch1"] >= TARGET_SPEEDUP, (
            f"micro-batching only {micro['speedup_vs_batch1']}x over batch-1 serving "
            f"(target {TARGET_SPEEDUP}x)"
        )
        assert micro["p99_ms"] <= P99_BOUND_MS, (
            f"p99 latency {micro['p99_ms']}ms exceeds the {P99_BOUND_MS}ms bound"
        )


# ------------------------------------------------------------- off-path evaluation cost
def _train_config(evaluate_every_epochs: int = 1) -> CrossbowConfig:
    return CrossbowConfig(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=32,
        replicas_per_gpu=TRAIN_LEARNERS,
        max_epochs=TRAIN_EPOCHS,
        evaluate_every_epochs=evaluate_every_epochs,
        seed=7,
        dataset_overrides=dict(TRAIN_DATASET),
        model_overrides={"input_dim": TRAIN_INPUT_DIM, "hidden_sizes": TRAIN_HIDDEN},
    )


def _timed_epoch_loop(
    mode: str,
) -> Dict[str, object]:
    """Time the epoch loop of one variant; returns loop seconds + accuracies.

    ``mode``: ``"none"`` never evaluates, ``"inline"`` evaluates on the
    critical path each epoch, ``"service"`` publishes to an off-path
    evaluation service each epoch and drains after the timed loop.
    """
    trainer = CrossbowTrainer(_train_config())
    service: Optional[EvaluationService] = None
    if mode == "service":
        service = EvaluationService(
            execution="process" if process_execution_supported() else "serial"
        )
        trainer.attach_evaluation_service(service)
    accuracies: List[float] = []
    try:
        # Warm-up: spawn the evaluator worker (fork + first forward) or prime
        # the inline evaluation path, so the timed loop is steady state.
        if mode == "service":
            assert service is not None
            service.submit(trainer.publish_checkpoint(), epoch=-1)
            service.drain()
        elif mode == "inline":
            trainer.evaluate()
        started = time.perf_counter()
        for epoch in range(TRAIN_EPOCHS):
            trainer._apply_schedule(epoch)
            trainer._train_epoch(epoch)
            if mode == "inline":
                accuracies.append(trainer.evaluate())
            elif mode == "service":
                assert service is not None
                service.submit(trainer.publish_checkpoint(epoch=epoch), epoch=epoch)
                service.poll()
        loop_seconds = time.perf_counter() - started
        if mode == "service":
            assert service is not None
            service.drain()
            accuracies = [service.accuracy_for_epoch(epoch) for epoch in range(TRAIN_EPOCHS)]
        return {"loop_seconds": loop_seconds, "accuracies": accuracies}
    finally:
        if service is not None:
            service.close()
        trainer.close()


def test_offpath_evaluation(report):
    runs = {mode: _timed_epoch_loop(mode) for mode in ("none", "inline", "service")}

    # The whole point of the drain barrier: deferred accuracies are the exact
    # floats inline evaluation produces on this seed (always asserted).
    assert runs["service"]["accuracies"] == runs["inline"]["accuracies"]

    baseline = runs["none"]["loop_seconds"]
    rows = [
        {
            "mode": mode,
            "epochs": TRAIN_EPOCHS,
            "learners": TRAIN_LEARNERS,
            "loop_seconds": round(run["loop_seconds"], 4),
            "loop_vs_no_eval": round(run["loop_seconds"] / baseline, 2),
            "final_accuracy": run["accuracies"][-1] if run["accuracies"] else None,
        }
        for mode, run in runs.items()
    ]
    report("serving_offpath_evaluation", rows)

    # Overlapping evaluation with training needs a spare core (the same
    # premise as bench_multiprocess), and wall-clock ratios are only
    # meaningful on quiet hosts — record everywhere, assert when both hold.
    if _strict() and (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert (
            runs["service"]["loop_seconds"]
            <= runs["none"]["loop_seconds"] * LOOP_OVERHEAD_TOLERANCE
        ), "off-path evaluation added more than noise to the training loop"


# ------------------------------------------------------- pooled and batched evaluation
POOL_EVALS = 8  # checkpoints per timing run (and versions per fused batch)
POOL_WORKERS = 4
POOL_TARGET_SPEEDUP = 2.0  # 4 workers vs the single forked evaluator
# Fused cross-model batching pays where the paper says batching pays: in the
# small-batch regime, where per-batch framework overhead dominates.  At large
# eval batches a single model already saturates the BLAS kernels and the two
# paths tie; both paths use the same batch size, so the comparison is fair.
BATCHED_EVAL_BATCH = 64


def _eval_workload():
    """A trainer (model + pipeline only) and a batch of distinct checkpoints."""
    trainer = CrossbowTrainer(_train_config(evaluate_every_epochs=0))
    base = trainer.initial_model.parameter_vector()
    rng = RandomState(23)
    checkpoints = [
        Checkpoint(
            parameters=(
                base + rng.normal(scale=0.05, size=base.shape).astype(np.float32)
            ),
            buffers={},
            epoch=index,
        )
        for index in range(POOL_EVALS)
    ]
    return trainer, checkpoints


def _inline_accuracies(trainer, checkpoints) -> List[float]:
    model = trainer.initial_model.clone()
    return [
        evaluate_top1(
            checkpoint.apply_to(model), trainer.pipeline.test_batches(batch_size=256)
        )
        for checkpoint in checkpoints
    ]


def test_evaluator_pool_scaling(report):
    if not process_execution_supported():
        import pytest

        pytest.skip("requires the fork start method")
    trainer, checkpoints = _eval_workload()
    inline = _inline_accuracies(trainer, checkpoints)
    rows: List[Dict[str, object]] = []
    try:
        for workers in (1, POOL_WORKERS):
            with EvaluatorPool(trainer.initial_model, trainer.pipeline, workers=workers) as pool:
                pool.evaluate(checkpoints[:1])  # warm: fork + first forward
                started = time.perf_counter()
                accuracies = pool.evaluate(checkpoints)
                elapsed = time.perf_counter() - started
            # The whole point of the slot-ring protocol: concurrency changes
            # completion order only, never a resolved accuracy.
            assert accuracies == inline
            rows.append(
                {
                    "workers": workers,
                    "evals": POOL_EVALS,
                    "seconds": round(elapsed, 4),
                    "evals_per_s": round(POOL_EVALS / elapsed, 2),
                }
            )
    finally:
        trainer.close()
    baseline, pooled = rows
    pooled["speedup_vs_1_worker"] = round(
        pooled["evals_per_s"] / baseline["evals_per_s"], 2
    )
    baseline["speedup_vs_1_worker"] = 1.0
    report("serving_pool_scaling", rows)
    # Parallel evaluation needs spare cores; ratios on busy/small hosts are
    # noise — record everywhere, assert where the premise holds.
    if _strict() and (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert pooled["speedup_vs_1_worker"] >= POOL_TARGET_SPEEDUP, (
            f"{POOL_WORKERS}-worker evaluator pool only "
            f"{pooled['speedup_vs_1_worker']}x over 1 worker "
            f"(target {POOL_TARGET_SPEEDUP}x)"
        )


def test_batched_evaluation(report):
    trainer, checkpoints = _eval_workload()
    try:
        model = trainer.initial_model.clone()
        evaluator = BatchedEvaluator(
            trainer.initial_model, trainer.pipeline, batch_size=BATCHED_EVAL_BATCH
        )
        # Warm both paths (BLAS init, bank allocation) before timing.
        evaluate_top1(
            checkpoints[0].apply_to(model),
            trainer.pipeline.test_batches(batch_size=BATCHED_EVAL_BATCH),
        )
        evaluator.evaluate(checkpoints)

        started = time.perf_counter()
        sequential = [
            evaluate_top1(
                checkpoint.apply_to(model),
                trainer.pipeline.test_batches(batch_size=BATCHED_EVAL_BATCH),
            )
            for checkpoint in checkpoints
        ]
        sequential_s = time.perf_counter() - started

        started = time.perf_counter()
        batched = evaluator.evaluate(checkpoints)
        batched_s = time.perf_counter() - started
    finally:
        trainer.close()

    # One fused pass must agree with eight sequential passes exactly.
    assert batched == sequential

    speedup = sequential_s / batched_s if batched_s > 0 else float("inf")
    rows = [
        {
            "mode": "sequential",
            "versions": POOL_EVALS,
            "eval_batch": BATCHED_EVAL_BATCH,
            "seconds": round(sequential_s, 4),
            "evals_per_s": round(POOL_EVALS / sequential_s, 2),
            "speedup_vs_sequential": 1.0,
        },
        {
            "mode": "batched",
            "versions": POOL_EVALS,
            "eval_batch": BATCHED_EVAL_BATCH,
            "seconds": round(batched_s, 4),
            "evals_per_s": round(POOL_EVALS / batched_s, 2),
            "speedup_vs_sequential": round(speedup, 2),
        },
    ]
    report("serving_batched_eval", rows)
    if _strict():
        assert speedup > 1.0, (
            f"fused batched evaluation ({batched_s:.4f}s) did not beat "
            f"{POOL_EVALS} sequential evaluations ({sequential_s:.4f}s)"
        )


# --------------------------------------------------------- pooled inference scaling
INFER_POOL_WORKERS = 4
INFER_POOL_TARGET_SPEEDUP = 2.0  # 4 active workers vs 1 on the same slot ring
INFER_BATCHES = 24  # request batches per timing run
SMOKE_INFER_BATCHES = 6
INFER_BATCH_SAMPLES = 32


def _inference_scaling_rows(num_batches: int) -> List[Dict[str, object]]:
    """Time the same request stream at 1 and 4 active pool workers.

    The parent thread plays the serving front-end: publish a batch into the
    slot ring, opportunistically drain finished tickets, block for the tail.
    Logits are asserted bit-identical to an inline forward on an identical
    clone — the pooled plane changes completion order, never a result.
    """
    model = _model()
    batches = [
        RandomState(17 + index)
        .normal(size=(INFER_BATCH_SAMPLES, SERVE_INPUT_DIM))
        .astype(np.float32)
        for index in range(num_batches)
    ]
    reference = model.clone()
    reference.eval()
    with no_grad():
        expected = [reference(Tensor(batch)).data for batch in batches]

    rows: List[Dict[str, object]] = []
    for workers in (1, INFER_POOL_WORKERS):
        with InferencePool(
            model,
            sample_shape=(SERVE_INPUT_DIM,),
            workers=workers,
            max_batch_samples=INFER_BATCH_SAMPLES,
        ) as pool:
            # Warm every active worker (first forward pays BLAS/init cost).
            for ticket in range(workers):
                pool.publish(ticket, batches[ticket % num_batches])
            while pool.in_flight:
                pool.collect(block=True)

            logits: Dict[int, np.ndarray] = {}

            def _absorb(payloads) -> None:
                for ticket, data, error in payloads:
                    assert error is None, f"pool worker failed:\n{error}"
                    logits[ticket] = data

            started = time.perf_counter()
            for ticket, batch in enumerate(batches):
                pool.publish(ticket, batch)
                _absorb(pool.collect(block=False))
            while pool.in_flight:
                _absorb(pool.collect(block=True))
            elapsed = time.perf_counter() - started

        assert all(
            np.array_equal(logits[ticket], expected[ticket])
            for ticket in range(num_batches)
        ), "pooled logits diverged from the inline forward"
        samples = num_batches * INFER_BATCH_SAMPLES
        rows.append(
            {
                "workers": workers,
                "batches": num_batches,
                "samples": samples,
                "seconds": round(elapsed, 4),
                "samples_per_s": round(samples / elapsed, 1),
            }
        )
    baseline, pooled = rows
    pooled["speedup_vs_1_worker"] = round(
        pooled["samples_per_s"] / baseline["samples_per_s"], 2
    )
    baseline["speedup_vs_1_worker"] = 1.0
    return rows


def test_inference_pool_scaling(report):
    if not process_execution_supported():
        import pytest

        pytest.skip("requires the fork start method")
    rows = _inference_scaling_rows(INFER_BATCHES)
    report("serving_inference_scaling", rows)
    baseline, pooled = rows
    # Parallel forwards need spare cores; ratios on busy/small hosts are
    # noise — record everywhere, assert where the premise holds.
    if _strict() and (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert pooled["speedup_vs_1_worker"] >= INFER_POOL_TARGET_SPEEDUP, (
            f"{INFER_POOL_WORKERS}-worker inference pool only "
            f"{pooled['speedup_vs_1_worker']}x over 1 worker "
            f"(target {INFER_POOL_TARGET_SPEEDUP}x)"
        )


# ----------------------------------------------------------------------- CLI / smoke
def main(argv: Optional[List[str]] = None) -> int:
    # Standalone runs bypass the pytest report fixture; the conftest helpers
    # parse the shared flags and record the summary the CI jobs upload.
    import conftest

    args = conftest.bench_cli(__doc__, argv)
    requests_per_client = SMOKE_REQUESTS_PER_CLIENT if args.smoke else REQUESTS_PER_CLIENT

    rows = _microbatching_rows(requests_per_client)
    conftest.standalone_report(
        "serving_microbatching_smoke" if args.smoke else "serving_microbatching_cli",
        rows,
    )
    baseline, micro = rows
    if micro["mean_batch_size"] <= 1.0:
        print("FAIL: micro-batching never coalesced requests", file=sys.stderr)
        return 1
    if not args.smoke and _strict() and micro["speedup_vs_batch1"] < TARGET_SPEEDUP:
        print(
            f"FAIL: speedup {micro['speedup_vs_batch1']}x < {TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {micro['requests']} requests served, micro-batching "
        f"{micro['speedup_vs_batch1']}x over batch-1 at p99={micro['p99_ms']}ms"
    )

    if process_execution_supported():
        # The pooled plane: bit-identity is asserted inside the helper on
        # every run; the speedup ratio is a strict gate only on full runs
        # with enough cores (the smoke run just proves the protocol).
        pool_batches = SMOKE_INFER_BATCHES if args.smoke else INFER_BATCHES
        pool_rows = _inference_scaling_rows(pool_batches)
        conftest.standalone_report(
            "serving_inference_scaling_smoke"
            if args.smoke
            else "serving_inference_scaling_cli",
            pool_rows,
        )
        _, pooled = pool_rows
        if (
            not args.smoke
            and _strict()
            and (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT
            and pooled["speedup_vs_1_worker"] < INFER_POOL_TARGET_SPEEDUP
        ):
            print(
                f"FAIL: {INFER_POOL_WORKERS}-worker pool speedup "
                f"{pooled['speedup_vs_1_worker']}x < {INFER_POOL_TARGET_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"ok: {pooled['samples']} samples through the inference pool, "
            f"{INFER_POOL_WORKERS} workers {pooled['speedup_vs_1_worker']}x over 1"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
