"""Ablation (beyond the paper's figures): operator output-buffer reuse (§4.5).

Compares the naive one-buffer-per-operator allocation, the offline
reference-counted reuse plan and the online plan that shares buffer pools
across learners on the same GPU.
"""

from __future__ import annotations

from repro.experiments import run_ablation_memory_plan


def test_ablation_memory_plan(benchmark, report):
    rows = benchmark.pedantic(
        run_ablation_memory_plan,
        kwargs={"model_name": "resnet32-scaled", "batch_size": 16, "learners": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    report("ablation_memory_plan", rows)

    by_key = {(row["plan"], row["learners"]): row for row in rows}
    naive = by_key[("naive", 1)]["peak_mb"]
    offline = by_key[("offline-reuse", 1)]["peak_mb"]
    # The offline plan should cut the footprint substantially (paper: up to 50%).
    assert offline < 0.6 * naive
    # Sharing pools across 4 learners must be cheaper than replicating naively.
    shared4 = by_key[("online-shared", 4)]
    assert shared4["peak_mb"] < shared4["vs_replicated_naive_mb"]
