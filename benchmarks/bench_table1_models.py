"""Table 1: deep-learning benchmark models and datasets used in the paper.

Regenerates the per-model inventory (operator count, model size in MB).  The
model sizes should match the paper closely (1.79 MB for ResNet-32, 57.37 MB for
VGG-16, 97.49 MB for ResNet-50); the operator counts differ in absolute value
because the paper counts low-level kernels while we count layer-level operators,
but the ordering across models is preserved.
"""

from __future__ import annotations

from repro.experiments import run_table1_model_inventory


def test_table1_model_inventory(benchmark, report):
    rows = benchmark.pedantic(run_table1_model_inventory, rounds=1, iterations=1)
    report("table1_model_inventory", rows)

    by_model = {row["model"]: row for row in rows}
    assert abs(by_model["resnet32"]["model_size_mb"] - 1.79) < 0.2
    assert abs(by_model["vgg16"]["model_size_mb"] - 57.37) < 2.0
    assert abs(by_model["resnet50"]["model_size_mb"] - 97.49) < 3.0
    assert (
        by_model["lenet"]["num_operators"]
        < by_model["vgg16"]["num_operators"]
        < by_model["resnet32"]["num_operators"]
        < by_model["resnet50"]["num_operators"]
    )
