"""Scenario benchmark: trace sweeps with SLO verdicts, plus training-plane studies.

Three measurements of the `repro.scenarios` harness:

* **Scenario sweep** — the four open-loop catalogue traces (Poisson, diurnal,
  flash crowd, slow drain) crossed with three admission policies and two
  serving-lane counts, simulated in virtual time under a service model slow
  enough that the flash crowd genuinely overloads one lane.  One tidy row per
  scenario; because the simulation is deterministic, the ``*_req_per_s``
  columns gate at the regression checker's ordinary tolerance with zero
  measurement noise, and the bench itself verifies a fixed-seed rerun (fanned
  across processes) reproduces every row bit for bit.  The SLO verdict column
  must show both outcomes: the degrade policy keeps every request but blows
  the p99 bound under the flash crowd — exactly the freshness-for-latency
  trade the policy documents.

* **Auto-tuner hysteresis study** — the pending Algorithm 2 question: how
  much resize flapping does shrink-side damping remove under noisy
  throughput?  Deterministic, so the damping claim is asserted outright.

* **Pipelined-EASGD ablation** — Figure 15 dual: EA-SGD synchronisation under
  the synchronous vs pipelined (depth 1) schedule on the real trainer.

Run under pytest for CSV reporting, or standalone for the CI smoke check:

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_scenarios.py
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.engine import process_execution_supported
from repro.scenarios import (
    Scenario,
    ScenarioRunner,
    ServiceModel,
    SLOSpec,
    hysteresis_damping_summary,
    rerun_identical,
    run_autotuner_hysteresis_study,
    run_pipelined_easgd_ablation,
    trace_catalogue,
)

DURATION_S = 8.0
SMOKE_DURATION_S = 2.0
POLICIES = ("reject", "shed-oldest", "degrade")
WORKERS = (1, 2)
# One lane serves ~80 req/s at max_batch=8 under this model (4 + 12*8 = 100 ms
# per full batch), so the flash-crowd burst (120 req/s) overloads a single
# lane while the Poisson baseline (40 req/s) stays comfortable — the contrast
# the admission policies exist for.
SERVICE = ServiceModel(batch_overhead_ms=4.0, per_sample_ms=12.0)
SLO = SLOSpec(p99_latency_ms=400.0, max_rejection_rate=0.5, min_served_fraction=0.5)


def _runner() -> ScenarioRunner:
    return ScenarioRunner(service=SERVICE, slo=SLO)


def sweep_rows(duration_s: float, seed: int, n_jobs: int = 1) -> List[Dict[str, object]]:
    """The full 4 traces x 3 policies x 2 worker-counts grid, as tidy rows."""
    results = _runner().sweep(
        trace_catalogue(duration_s=duration_s),
        policies=POLICIES,
        workers=WORKERS,
        seed=seed,
        n_jobs=n_jobs,
    )
    return ScenarioRunner.rows(results)


# ------------------------------------------------------------------- scenario sweep
def test_scenario_sweep(report):
    rows = sweep_rows(DURATION_S, seed=0)
    report("scenario_sweep", rows)
    assert len(rows) == len(trace_catalogue()) * len(POLICIES) * len(WORKERS)
    verdicts = {row["slo"] for row in rows}
    # The sweep must demonstrate both contract outcomes (the acceptance bar):
    # policies that bound the queue pass; degrade under the flash crowd fails p99.
    assert verdicts == {"pass", "fail"}
    # Fixed-seed determinism, including across fan-out processes.
    assert rows == sweep_rows(DURATION_S, seed=0, n_jobs=2)
    # And a different seed is a genuinely different workload.
    assert rows != sweep_rows(DURATION_S, seed=1)


# -------------------------------------------------------------- training-plane studies
def test_autotuner_hysteresis_study(report):
    rows = run_autotuner_hysteresis_study()
    report("scenario_hysteresis", rows)
    assert hysteresis_damping_summary(rows), (
        "shrink-side hysteresis did not reduce auto-tuner resize flapping: "
        f"{[(row['hysteresis'], row['resizes']) for row in rows]}"
    )
    # Deterministic study: a rerun reproduces the rows exactly.
    assert rows == run_autotuner_hysteresis_study()


def test_pipelined_easgd_ablation(report):
    if not process_execution_supported():
        import pytest

        pytest.skip("requires the fork start method")
    rows = run_pipelined_easgd_ablation()
    report("scenario_easgd_ablation", rows)
    synchronous, pipelined = rows
    assert synchronous["center_finite"] and pipelined["center_finite"]
    # The pipelined schedule really overlapped EA-SGD updates at staleness 1.
    assert pipelined["max_staleness"] == 1 and synchronous["max_staleness"] == 0
    assert pipelined["sync_overlap_fraction"] > 0.0


# ----------------------------------------------------------------------- CLI / smoke
def main(argv: Optional[List[str]] = None) -> int:
    import conftest

    args = conftest.bench_cli(__doc__, argv)
    duration = SMOKE_DURATION_S if args.smoke else DURATION_S

    rows = sweep_rows(duration, seed=args.seed)
    conftest.standalone_report(
        "scenario_sweep_smoke" if args.smoke else "scenario_sweep", rows
    )
    # The determinism contract, end to end: the same seed fanned across two
    # processes must reproduce every row, and a single scenario must rerun
    # bit-identically in-process.
    if rows != sweep_rows(duration, seed=args.seed, n_jobs=2):
        print("FAIL: fixed-seed sweep rows changed across n_jobs", file=sys.stderr)
        return 1
    probe = Scenario(
        trace=trace_catalogue(duration_s=duration)[2],  # flash crowd
        admission_policy="shed-oldest",
        service=SERVICE,
        slo=SLO,
        seed=args.seed,
    )
    if not rerun_identical(probe):
        print("FAIL: single-scenario rerun was not bit-identical", file=sys.stderr)
        return 1
    verdicts = {row["slo"] for row in rows}
    if verdicts != {"pass", "fail"}:
        print(f"FAIL: expected both SLO verdicts, saw {verdicts}", file=sys.stderr)
        return 1

    hysteresis_rows = run_autotuner_hysteresis_study(seed=args.seed)
    conftest.standalone_report("scenario_hysteresis", hysteresis_rows)
    if not hysteresis_damping_summary(hysteresis_rows):
        print("FAIL: hysteresis did not damp auto-tuner resizes", file=sys.stderr)
        return 1

    failed = sum(1 for row in rows if row["slo"] == "fail")
    print(
        f"ok: {len(rows)} scenarios simulated deterministically "
        f"({failed} SLO violation(s), as designed); hysteresis damping "
        f"{hysteresis_rows[0]['resizes']} -> {hysteresis_rows[-1]['resizes']} resizes"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
