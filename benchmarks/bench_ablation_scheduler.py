"""Ablation (beyond the paper's figures): task scheduling policy.

Compares Crossbow's first-come-first-served dispatch with overlapped
synchronisation against a lockstep round-robin policy (the TensorFlow/PyTorch
style the paper contrasts with in §4.3), on the LeNet workload where per-task
scheduling overhead matters most.
"""

from __future__ import annotations

from repro.experiments import run_ablation_scheduler


def test_ablation_scheduler_policy(benchmark, report):
    rows = benchmark.pedantic(
        run_ablation_scheduler,
        kwargs={
            "model": "lenet",
            "num_gpus": 1,
            "replicas_per_gpu": 2,
            "batch_size": 4,
            "iterations": 300,
        },
        rounds=1,
        iterations=1,
    )
    report("ablation_scheduler", rows)

    by_policy = {row["policy"]: row["throughput_img_s"] for row in rows}
    # The FCFS/overlap scheduler should clearly outperform lockstep dispatch for
    # tiny tasks (the LeNet result in §5.2 attributes a 43% TTA reduction to it).
    assert by_policy["fcfs-overlap"] > 1.2 * by_policy["lockstep"]
