"""Figure 2: hardware efficiency of parallel S-SGD.

Speed-up with an increasing number of GPUs when training ResNet-32, for several
aggregate batch sizes.  Expected shape (paper): with a fixed aggregate batch
(e.g. 64) the per-GPU batch shrinks and the speed-up is clearly sub-linear;
keeping the per-GPU batch constant (aggregate 512/1024 on 8 GPUs) gives a
near-linear speed-up.
"""

from __future__ import annotations

from repro.experiments import run_fig2_hardware_efficiency


def test_fig2_hardware_efficiency(benchmark, report):
    rows = benchmark.pedantic(
        run_fig2_hardware_efficiency,
        kwargs={
            "gpu_counts": (1, 2, 4, 8),
            "aggregate_batch_sizes": (64, 128, 256, 512, 1024),
            "iterations": 40,
        },
        rounds=1,
        iterations=1,
    )
    report("fig02_hw_efficiency", rows)

    by_key = {(r["aggregate_batch"], r["gpus"]): r["speedup_vs_1gpu"] for r in rows}
    # Fixed small aggregate batch scales poorly on 8 GPUs...
    assert by_key[(64, 8)] < 5.0
    # ...while a constant per-GPU batch (1024/8 = 128) scales near-linearly.
    assert by_key[(1024, 8)] > 6.0
    # Speed-up is monotone in the aggregate batch at 8 GPUs.
    assert by_key[(64, 8)] <= by_key[(256, 8)] <= by_key[(1024, 8)]
