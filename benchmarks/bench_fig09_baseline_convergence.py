"""Figure 9: baseline (S-SGD) convergence over epochs for the four benchmark models.

These curves define the accuracy targets used by the TTA experiments.  Expected
shape (paper): every model's test accuracy rises steeply over the first epochs
and then flattens; LeNet converges almost immediately, the deeper models take
longer.
"""

from __future__ import annotations

from repro.experiments import run_fig9_baseline_convergence


def test_fig9_baseline_convergence(benchmark, report):
    rows = benchmark.pedantic(
        run_fig9_baseline_convergence,
        kwargs={"models": ("lenet", "resnet32", "vgg16", "resnet50"), "max_epochs": 8},
        rounds=1,
        iterations=1,
    )
    report("fig09_baseline_convergence", rows)

    models = {row["model"] for row in rows}
    assert models == {"lenet", "resnet32", "vgg16", "resnet50"}
    for model in models:
        curve = [row["test_accuracy"] for row in rows if row["model"] == model]
        # Accuracy at the end of the run should beat the untrained model by a
        # wide margin (training is actually happening for every model family).
        assert max(curve) > curve[0] or curve[0] > 0.5
