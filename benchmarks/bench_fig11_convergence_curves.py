"""Figure 11: test accuracy over (simulated) time with 1 and 8 GPUs.

Expected shape (paper): Crossbow's accuracy-versus-time curve rises faster than
the baseline's — it reaches any intermediate accuracy threshold earlier —
because it sustains higher throughput at the same small batch size.
"""

from __future__ import annotations

from repro.experiments import run_fig11_convergence_curves


def test_fig11_convergence_curves(benchmark, report):
    rows = benchmark.pedantic(
        run_fig11_convergence_curves,
        kwargs={"model": "resnet32", "gpu_counts": (1, 8), "best_replicas": 2, "max_epochs": 8},
        rounds=1,
        iterations=1,
    )
    report("fig11_convergence_curves", rows)

    systems = {row["system"] for row in rows}
    assert "tensorflow-ssgd" in systems and "crossbow-m2" in systems
    # Every curve exists and is monotone in time (runs that hit the accuracy
    # target within their first epoch legitimately produce a single point).
    for system in systems:
        for gpus in (1, 8):
            times = [
                r["time_seconds"] for r in rows if r["system"] == system and r["gpus"] == gpus
            ]
            assert len(times) >= 1
            assert times == sorted(times)
