"""Pipelined-synchronisation and persistent-pool-resize microbenchmarks.

Two claims from the PR-4 executor work, mirroring the paper's argument that
synchronisation must not serialise the learners (§4):

* **Pipelined throughput** — with ``pipeline_depth=1`` the parent applies the
  fused ``SMA.step_matrix`` of iteration ``t`` *while* the workers compute
  iteration ``t+1``'s gradients against the published weight buffer, so the
  synchronisation step leaves the critical path.  Measured as whole-iteration
  throughput at k = 8 learners, pipelined vs the synchronous
  ``pipeline_depth=0`` schedule.  The ≥ 1.2x bar presumes parallel hardware
  (≥ 4 cores); ``BENCH_STRICT=0`` downgrades the assertion to a report for
  shared/noisy runners.

* **Persistent-pool resize latency** — an auto-tuner grow/shrink used to stop
  the whole worker pool and respawn every fork; the persistent pool re-shards
  the survivors in place and forks only the added learner.  Measured as the
  wall-clock cost of a grow plus the first iteration after it (the respawn
  path pays its forks lazily on that iteration), persistent vs respawn.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

import numpy as np

from repro.engine import CrossbowConfig, CrossbowTrainer, process_execution_supported

LEARNERS = 8
EPOCHS = 3
HIDDEN = (512, 256)
INPUT_DIM = 64
NUM_TRAIN = 4096
BATCH_SIZE = 32
MIN_CORES_FOR_ASSERT = 4
TARGET_SPEEDUP = 1.2

RESIZE_CYCLES = 4
RESIZE_BASE_LEARNERS = 6
RESIZE_MAX_LEARNERS = 8


def _strict() -> bool:
    return os.environ.get("BENCH_STRICT", "1") != "0"


def _skip_without_fork() -> None:
    if not process_execution_supported():  # pragma: no cover - non-POSIX only
        import pytest

        pytest.skip("fork start method unavailable")


# ------------------------------------------------------------------ pipelined throughput
def _throughput_config(
    pipeline_depth: int, epochs: int = EPOCHS, num_train: int = NUM_TRAIN, seed: int = 7
) -> CrossbowConfig:
    return CrossbowConfig(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=BATCH_SIZE,
        replicas_per_gpu=LEARNERS,
        max_epochs=epochs,
        seed=seed,
        execution="process",
        pipeline_depth=pipeline_depth,
        dataset_overrides={"num_train": num_train, "num_test": 256, "input_dim": INPUT_DIM},
        model_overrides={"input_dim": INPUT_DIM, "hidden_sizes": HIDDEN},
    )


def _run_throughput(
    pipeline_depth: int, epochs: int = EPOCHS, num_train: int = NUM_TRAIN, seed: int = 7
) -> Dict[str, object]:
    trainer = CrossbowTrainer(_throughput_config(pipeline_depth, epochs, num_train, seed))
    try:
        # Warm-up epoch: spawns the worker pool and touches every allocation,
        # so the timed epochs measure steady-state behaviour.
        trainer._apply_schedule(0)
        trainer._train_epoch(0)
        warmup_iterations = trainer._iteration
        started = time.perf_counter()
        for epoch in range(1, epochs):
            trainer._train_epoch(epoch)
        elapsed = time.perf_counter() - started
        iterations = trainer._iteration - warmup_iterations
        counters = trainer.sync_counters
        return {
            "iterations": iterations,
            "seconds": elapsed,
            "iter_per_s": iterations / elapsed if elapsed > 0 else float("inf"),
            "center_finite": bool(np.isfinite(trainer.central_model_vector()).all()),
            "sync_overlap_fraction": counters.overlap_fraction,
            "max_staleness": counters.max_staleness,
        }
    finally:
        trainer.close()


def test_pipelined_throughput(report):
    _skip_without_fork()

    synchronous = _run_throughput(pipeline_depth=0)
    pipelined = _run_throughput(pipeline_depth=1)
    assert synchronous["center_finite"] and pipelined["center_finite"]
    # Depth 1 really ran the overlapped schedule with bounded staleness.
    assert pipelined["max_staleness"] == 1
    assert synchronous["max_staleness"] == 0

    speedup = pipelined["iter_per_s"] / synchronous["iter_per_s"]
    cores = os.cpu_count() or 1
    report(
        "pipeline_throughput",
        [
            {
                "mode": mode,
                "learners": LEARNERS,
                "iterations": run["iterations"],
                "seconds": round(float(run["seconds"]), 4),
                "iter_per_s": round(float(run["iter_per_s"]), 2),
                "sync_overlap_fraction": round(float(run["sync_overlap_fraction"]), 4),
                "max_staleness": run["max_staleness"],
                "cores": cores,
                "speedup_vs_process": round(
                    float(run["iter_per_s"] / synchronous["iter_per_s"]), 2
                ),
            }
            for mode, run in (("process", synchronous), ("pipelined", pipelined))
        ],
    )

    # The bar presumes parallel hardware: on one core the overlapped section
    # competes with the workers for the same CPU, so just record the numbers.
    if cores >= MIN_CORES_FOR_ASSERT and _strict():
        assert speedup > TARGET_SPEEDUP, (
            f"pipelined execution only {speedup:.2f}x faster at k={LEARNERS} "
            f"on {cores} cores (target {TARGET_SPEEDUP}x)"
        )


# ------------------------------------------------------------------ resize latency
def _resize_config(persistent: bool) -> CrossbowConfig:
    return CrossbowConfig(
        model_name="mlp",
        dataset_name="blobs",
        num_gpus=1,
        batch_size=16,
        replicas_per_gpu=RESIZE_BASE_LEARNERS,
        # auto_tune pre-allocates the bank up to the ceiling so the manual
        # grows below never reallocate shared segments; the huge interval
        # keeps Algorithm 2 itself from ever firing.
        auto_tune=True,
        auto_tune_interval=10**9,
        max_replicas_per_gpu=RESIZE_MAX_LEARNERS,
        max_epochs=1,
        seed=7,
        execution="process",
        persistent_pool=persistent,
        dataset_overrides={"num_train": 4096, "num_test": 128, "input_dim": 32},
        model_overrides={"input_dim": 32, "hidden_sizes": (64,)},
    )


def _run_resize(persistent: bool) -> Dict[str, object]:
    trainer = CrossbowTrainer(_resize_config(persistent))
    try:
        executor = trainer._executor
        trainer._apply_schedule(0)
        executor.begin_epoch(0)
        # Warm up: spawn the pool and run a few steady-state iterations.
        for _ in range(3):
            trainer._run_iteration_process()
        grow_seconds: List[float] = []
        for _ in range(RESIZE_CYCLES):
            started = time.perf_counter()
            trainer._grow_learners()
            # The respawn path pays its forks lazily on the next iteration,
            # so the first post-resize iteration is part of the resize cost.
            trainer._run_iteration_process()
            grow_seconds.append(time.perf_counter() - started)
            trainer._shrink_learners()  # restore; not measured
            trainer._run_iteration_process()
        return {
            "median_grow_ms": float(np.median(grow_seconds) * 1e3),
            "max_grow_ms": float(np.max(grow_seconds) * 1e3),
            "respawns": trainer._executor.respawns,
            "resizes_in_place": trainer._executor.resizes_in_place,
        }
    finally:
        trainer.close()


def test_persistent_resize_latency(report):
    _skip_without_fork()

    persistent = _run_resize(persistent=True)
    respawn = _run_resize(persistent=False)
    # The persistent run must actually have taken the in-place path (both
    # grows and shrinks), and the respawn run must not have.
    assert persistent["resizes_in_place"] == 2 * RESIZE_CYCLES
    assert respawn["resizes_in_place"] == 0

    ratio = respawn["median_grow_ms"] / max(persistent["median_grow_ms"], 1e-9)
    report(
        "pipeline_resize_latency",
        [
            {
                "mode": mode,
                "base_learners": RESIZE_BASE_LEARNERS,
                "cycles": RESIZE_CYCLES,
                "median_grow_ms": round(run["median_grow_ms"], 2),
                "max_grow_ms": round(run["max_grow_ms"], 2),
                "respawns": run["respawns"],
                "resizes_in_place": run["resizes_in_place"],
                "respawn_over_persistent": round(
                    float(run["median_grow_ms"] / persistent["median_grow_ms"]), 2
                ),
            }
            for mode, run in (("persistent", persistent), ("respawn", respawn))
        ],
    )

    if _strict():
        assert persistent["median_grow_ms"] < respawn["median_grow_ms"], (
            f"persistent resize ({persistent['median_grow_ms']:.1f} ms) not faster "
            f"than respawn ({respawn['median_grow_ms']:.1f} ms); ratio {ratio:.2f}"
        )


# ----------------------------------------------------------------------- CLI / smoke
SMOKE_EPOCHS = 2
SMOKE_NUM_TRAIN = 1024


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone pipelined-throughput check (the CI smoke path)."""
    import sys

    import conftest

    args = conftest.bench_cli(__doc__, argv)
    if not process_execution_supported():
        print("skip: fork start method unavailable")
        return 0
    epochs = SMOKE_EPOCHS if args.smoke else EPOCHS
    num_train = SMOKE_NUM_TRAIN if args.smoke else NUM_TRAIN
    runs = {
        mode: _run_throughput(depth, epochs=epochs, num_train=num_train, seed=args.seed)
        for mode, depth in (("synchronous", 0), ("pipelined", 1))
    }
    rows = [
        {
            "mode": mode,
            "learners": LEARNERS,
            "iterations": run["iterations"],
            "seconds": round(float(run["seconds"]), 4),
            "iter_per_s": round(float(run["iter_per_s"]), 2),
            "sync_overlap_fraction": round(float(run["sync_overlap_fraction"]), 4),
            "max_staleness": run["max_staleness"],
        }
        for mode, run in runs.items()
    ]
    conftest.standalone_report(
        "pipeline_throughput_smoke" if args.smoke else "pipeline_throughput_cli", rows
    )
    if not (runs["synchronous"]["center_finite"] and runs["pipelined"]["center_finite"]):
        print("FAIL: non-finite central model after training", file=sys.stderr)
        return 1
    if runs["pipelined"]["max_staleness"] != 1 or runs["synchronous"]["max_staleness"] != 0:
        print("FAIL: pipelined schedule did not run with staleness bound 1", file=sys.stderr)
        return 1
    speedup = runs["pipelined"]["iter_per_s"] / runs["synchronous"]["iter_per_s"]
    cores = os.cpu_count() or 1
    if not args.smoke and _strict() and cores >= MIN_CORES_FOR_ASSERT:
        if speedup <= TARGET_SPEEDUP:
            print(
                f"FAIL: pipelined only {speedup:.2f}x over synchronous "
                f"(target {TARGET_SPEEDUP}x on {cores} cores)",
                file=sys.stderr,
            )
            return 1
    print(f"ok: pipelined {speedup:.2f}x over synchronous at k={LEARNERS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
