"""Figure 15: SMA compared with EA-SGD synchronisation inside Crossbow.

Expected shape (paper): SMA reaches the accuracy target in no more time than
EA-SGD, and the gap widens with more learners (more GPUs), because the momentum
term keeps the central average model moving when many replicas reduce its
variance.
"""

from __future__ import annotations

from repro.experiments import run_fig15_sma_vs_easgd


def test_fig15_sma_vs_easgd(benchmark, report):
    rows = benchmark.pedantic(
        run_fig15_sma_vs_easgd,
        kwargs={
            "model": "resnet32",
            "gpu_counts": (1, 8),
            "replicas_per_gpu": 2,
            "max_epochs": 10,
        },
        rounds=1,
        iterations=1,
    )
    report("fig15_sma_vs_easgd", rows)

    def lookup(gpus, sync):
        for row in rows:
            if row["gpus"] == gpus and row["synchronisation"] == sync:
                return row
        raise AssertionError("missing row")

    for gpus in (1, 8):
        sma = lookup(gpus, "sma")
        easgd = lookup(gpus, "easgd")
        # Both must actually train; SMA's best accuracy should not lag EA-SGD's badly.
        assert sma["best_accuracy"] >= easgd["best_accuracy"] - 0.05
        if sma["tta_seconds"] is not None and easgd["tta_seconds"] is not None:
            assert sma["tta_seconds"] <= easgd["tta_seconds"] * 1.2
