#!/usr/bin/env python
"""Execute the Python code blocks in Markdown docs and validate relative links.

CI runs this over README.md and docs/*.md so every snippet a reader might
copy-paste is guaranteed to execute against the current code, and no relative
link points at a file that has moved.  Usage:

    PYTHONPATH=src python tools/check_docs.py README.md docs/architecture.md ...

Every fenced block tagged ``python`` is executed in its own namespace from the
repository root.  Blocks tagged ``python no-check`` are skipped (for
illustrative fragments that are not self-contained).  Exits non-zero on the
first failing snippet or dangling link, printing the offending block.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```\s*(.*?)\s*$")
# [text](target) — markdown links, excluding images; URL targets are ignored.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(?:#[^)]*)?\)")


def python_blocks(text: str) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(first_line_number, info_string, source)`` for every fenced block
    whose info string starts with ``python`` — including sloppy variants like
    ``` python`` or ```` ```python3 ````, so misspelled tags fail loudly in
    :func:`check_file` instead of silently skipping the snippet."""
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE_RE.match(lines[index])
        if match and match.group(1):  # an *opening* fence (has an info string)
            info = match.group(1)
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                body.append(lines[index])
                index += 1
            if info.split()[0].startswith("python"):
                yield start + 1, info, "\n".join(body)
        index += 1


def check_links(path: Path, text: str) -> List[str]:
    """Return error strings for relative links that do not resolve."""
    errors = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path}: dangling link -> {target}")
    return errors


def check_file(path: Path) -> List[str]:
    text = path.read_text(encoding="utf-8")
    errors = check_links(path, text)
    for line, info, source in python_blocks(text):
        parts = info.split()
        if parts[0] != "python":
            errors.append(f"{path}:{line}: unrecognised fence tag {parts[0]!r} (use 'python')")
            continue
        if "no-check" in parts[1:]:
            continue
        if not source.strip():
            continue
        namespace: dict = {"__name__": "__docs__"}
        try:
            exec(compile(source, f"{path}:{line}", "exec"), namespace)  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - report and keep checking
            errors.append(
                f"{path}:{line}: snippet raised {type(exc).__name__}: {exc}\n"
                + "\n".join(f"    {l}" for l in source.splitlines())
            )
    return errors


def main(argv: List[str]) -> int:
    paths = [Path(arg) for arg in argv] or sorted(
        [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
    )
    failures: List[str] = []
    checked = 0
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: file not found")
            continue
        blocks = len(list(python_blocks(path.read_text(encoding="utf-8"))))
        failures.extend(check_file(path))
        checked += blocks
        print(f"checked {path} ({blocks} python block(s))")
    if failures:
        print("\n".join(["", "FAILURES:", *failures]), file=sys.stderr)
        return 1
    print(f"ok: {checked} snippet(s) executed, all links resolve")
    return 0


if __name__ == "__main__":
    import os

    os.chdir(REPO_ROOT)  # snippets read benchmark CSVs etc. relative to the root
    raise SystemExit(main(sys.argv[1:]))
