#!/usr/bin/env python
"""Gate CI on benchmark throughput: trajectory-over-last-N-runs, or a point baseline.

``record_bench_summary`` merges every benchmark's rows into
``benchmarks/results/BENCH_summary.json`` per run (and dual-writes them into
the telemetry store); this tool fails (exit 1) when any tracked throughput
metric regressed by more than ``--max-regression`` (default 25%).

Two gating modes:

* **trajectory** (the default): each tracked metric is compared against the
  *median of its own last-N prior runs* in the telemetry store
  (``benchmarks/results/telemetry.sqlite``, accumulated by the benches'
  dual-writes).  A median over history is robust to one lucky or noisy
  baseline measurement, and a slow monotone drift is caught the moment the
  median crosses the threshold rather than never.  Metrics with fewer than
  ``--min-runs`` prior runs fall back to the committed point baseline for
  that metric (so a fresh checkout — CI's first run — still gates).  Set
  ``REPRO_RUN_ID`` to the id the benches ran under so the run being gated is
  excluded from its own history window.
* **point** (``--point-baseline``): the pre-trajectory behaviour — compare
  against the checked-in ``benchmarks/results/BENCH_baseline.json`` only.

What is tracked is derived, not hand-listed: rows are paired by position
(benches emit rows in deterministic order; string-identity columns such as
``mode`` are cross-checked and a mismatched pairing is skipped with a
warning), and every numeric column whose name matches
``throughput``/``*_per_s`` is gated.  Entries only one side has are skipped
— each CI job runs its own subset of benches — and faster-than-baseline is
always fine: the gate only catches regressions, so history recorded on
modest hardware still guards runs on faster machines.

Usage:

    PYTHONPATH=src python tools/check_bench_regression.py
    PYTHONPATH=src python tools/check_bench_regression.py --point-baseline
    PYTHONPATH=src python tools/check_bench_regression.py --max-regression 0.4
    PYTHONPATH=src python tools/check_bench_regression.py --write-baseline

``--write-baseline`` snapshots the current summary as the new baseline
(commit the result) — run it after a deliberate perf change, with fresh
numbers from the benches the CI jobs run.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SUMMARY = REPO_ROOT / "benchmarks" / "results" / "BENCH_summary.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_baseline.json"
DEFAULT_DB = REPO_ROOT / "benchmarks" / "results" / "telemetry.sqlite"

# The store lives in the package; tolerate a missing PYTHONPATH=src.
sys.path.append(str(REPO_ROOT / "src"))

#: numeric columns gated by the regression check (higher is better)
THROUGHPUT_RE = re.compile(r"throughput|_per_s$|_per_sec$", re.IGNORECASE)


def load_entries(path: Path) -> Dict[str, List[Dict[str, object]]]:
    document = json.loads(path.read_text())
    entries = document.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"{path} has no 'entries' mapping (schema mismatch?)")
    return {
        name: rows for name, rows in entries.items() if isinstance(rows, list)
    }


def _identity(row: Dict[str, object]) -> Dict[str, object]:
    """The row's identity columns: strings/bools only.

    Numeric columns are measurements (they vary run to run), so identity is
    anchored on categorical columns like ``mode``/``model``; rows are paired
    positionally and benches emit rows in deterministic order, making this a
    safety net against a bench re-ordering its output, not a join key.
    """
    return {
        key: value
        for key, value in row.items()
        if not THROUGHPUT_RE.search(key) and isinstance(value, (str, bool))
    }


def compare_rows(
    entry: str,
    index: int,
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
) -> Tuple[List[str], List[str], int]:
    """Returns (failures, warnings, gated_metric_count) for one row pair."""
    failures: List[str] = []
    warnings: List[str] = []
    current_id, baseline_id = _identity(current), _identity(baseline)
    shared_id = set(current_id) & set(baseline_id)
    if any(current_id[key] != baseline_id[key] for key in shared_id):
        warnings.append(
            f"{entry}[{index}]: row identity changed "
            f"({ {k: baseline_id[k] for k in sorted(shared_id)} } -> "
            f"{ {k: current_id[k] for k in sorted(shared_id)} }); skipping"
        )
        return failures, warnings, 0
    gated = 0
    for key, base_value in baseline.items():
        if not THROUGHPUT_RE.search(key):
            continue
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            continue
        value = current.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            warnings.append(f"{entry}[{index}].{key}: missing in current run; skipping")
            continue
        gated += 1
        floor = base_value * (1.0 - max_regression)
        if value < floor:
            failures.append(
                f"{entry}[{index}].{key}: {value:g} is "
                f"{(1 - value / base_value) * 100:.1f}% below baseline "
                f"{base_value:g} (allowed {max_regression * 100:.0f}%)"
            )
    return failures, warnings, gated


def check_trajectory(
    summary_path: Path,
    baseline_path: Path,
    db_path: Path,
    max_regression: float,
    window: int,
    min_runs: int,
) -> int:
    """Gate each tracked metric against the median of its last-N prior runs.

    Falls back to the committed point baseline per metric when the store
    holds fewer than ``min_runs`` prior runs for it — the first-run path.
    """
    from repro.telemetry.store import TelemetryStore

    current_entries = load_entries(summary_path)
    baseline_entries: Dict[str, List[Dict[str, object]]] = {}
    if baseline_path.exists():
        baseline_entries = load_entries(baseline_path)
    exclude_run = os.environ.get("REPRO_RUN_ID")
    failures: List[str] = []
    warnings: List[str] = []
    gated = from_history = from_baseline = 0
    with TelemetryStore(db_path) as store:
        for entry in sorted(current_entries):
            baseline_rows = baseline_entries.get(entry, [])
            for index, row in enumerate(current_entries[entry]):
                for key, value in row.items():
                    if not THROUGHPUT_RE.search(key):
                        continue
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        continue
                    history = store.bench_history(
                        entry, index, key, window, exclude_run=exclude_run
                    )
                    if len(history) >= min_runs:
                        reference = statistics.median(v for _, v in history)
                        source = f"median of last {len(history)} run(s)"
                        from_history += 1
                    else:
                        baseline_row = (
                            baseline_rows[index] if index < len(baseline_rows) else {}
                        )
                        base_value = baseline_row.get(key)
                        if not isinstance(base_value, (int, float)) or isinstance(
                            base_value, bool
                        ):
                            warnings.append(
                                f"{entry}[{index}].{key}: {len(history)} prior run(s) "
                                f"(< {min_runs}) and no point baseline; skipping"
                            )
                            continue
                        reference = float(base_value)
                        source = "point baseline (insufficient history)"
                        from_baseline += 1
                    gated += 1
                    floor = reference * (1.0 - max_regression)
                    if reference > 0 and value < floor:
                        failures.append(
                            f"{entry}[{index}].{key}: {value:g} is "
                            f"{(1 - value / reference) * 100:.1f}% below {source} "
                            f"{reference:g} (allowed {max_regression * 100:.0f}%)"
                        )
    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        print("\nTHROUGHPUT REGRESSIONS (trajectory mode):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {gated} throughput metric(s) within {max_regression * 100:.0f}% of "
        f"their trajectory ({from_history} gated on run history in {db_path.name}, "
        f"{from_baseline} on the point baseline)"
    )
    return 0


def check(
    summary_path: Path, baseline_path: Path, max_regression: float
) -> int:
    current_entries = load_entries(summary_path)
    baseline_entries = load_entries(baseline_path)
    shared = sorted(set(current_entries) & set(baseline_entries))
    skipped = sorted(set(baseline_entries) - set(current_entries))
    failures: List[str] = []
    warnings: List[str] = []
    gated = 0
    for entry in shared:
        current_rows = current_entries[entry]
        baseline_rows = baseline_entries[entry]
        if len(current_rows) != len(baseline_rows):
            warnings.append(
                f"{entry}: row count changed ({len(baseline_rows)} -> "
                f"{len(current_rows)}); comparing the common prefix"
            )
        for index, (current, baseline) in enumerate(zip(current_rows, baseline_rows)):
            row_failures, row_warnings, row_gated = compare_rows(
                entry, index, current, baseline, max_regression
            )
            failures.extend(row_failures)
            warnings.extend(row_warnings)
            gated += row_gated
    for warning in warnings:
        print(f"warning: {warning}")
    if skipped:
        print(f"skipped (not in this run): {', '.join(skipped)}")
    if failures:
        print("\nTHROUGHPUT REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {gated} throughput metric(s) across {len(shared)} benchmark(s) "
        f"within {max_regression * 100:.0f}% of baseline"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--summary", type=Path, default=DEFAULT_SUMMARY)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop per metric (default 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current summary as the new baseline and exit",
    )
    parser.add_argument(
        "--point-baseline",
        action="store_true",
        help="gate against BENCH_baseline.json only (pre-trajectory behaviour)",
    )
    parser.add_argument(
        "--db",
        type=Path,
        default=None,
        help="telemetry store for trajectory mode (default: "
        "benchmarks/results/telemetry.sqlite, or REPRO_TELEMETRY_DB)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="trajectory mode: prior runs in the rolling window (default 5)",
    )
    parser.add_argument(
        "--min-runs",
        type=int,
        default=2,
        help="trajectory mode: prior runs required before the history median "
        "replaces the point baseline (default 2)",
    )
    args = parser.parse_args(argv)
    if not args.summary.exists():
        print(f"error: no benchmark summary at {args.summary} (run the benches first)",
              file=sys.stderr)
        return 1
    if args.write_baseline:
        load_entries(args.summary)  # refuse to enshrine an unparseable summary
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.summary, args.baseline)
        print(f"baseline written: {args.baseline}")
        return 0
    if not args.point_baseline:
        db = args.db
        if db is None:
            db = Path(os.environ.get("REPRO_TELEMETRY_DB", DEFAULT_DB))
        return check_trajectory(
            args.summary,
            args.baseline,
            db,
            args.max_regression,
            window=args.window,
            min_runs=args.min_runs,
        )
    if not args.baseline.exists():
        print(
            f"error: no baseline at {args.baseline}; create one with "
            "--write-baseline and commit it",
            file=sys.stderr,
        )
        return 1
    return check(args.summary, args.baseline, args.max_regression)


if __name__ == "__main__":
    raise SystemExit(main())
