#!/usr/bin/env python
"""Gate CI on benchmark throughput: compare a run's summary to the baseline.

``record_bench_summary`` merges every benchmark's rows into
``benchmarks/results/BENCH_summary.json`` per run; this tool compares those
rows against the checked-in ``benchmarks/results/BENCH_baseline.json`` and
fails (exit 1) when any tracked throughput metric regressed by more than
``--max-regression`` (default 25%).

What is tracked is derived, not hand-listed: within every benchmark entry
present in *both* documents, rows are paired by position (benches emit rows
in deterministic order; string-identity columns such as ``mode`` are
cross-checked and a mismatched pairing is skipped with a warning), and every
shared numeric column whose name matches ``throughput``/``*_per_s`` is
gated.  Entries only one side has are skipped — each CI job runs its own
subset of benches — and faster-than-baseline is always fine: the gate only
catches regressions, so a baseline recorded on modest hardware still guards
runs on faster machines.

Usage:

    PYTHONPATH=src python tools/check_bench_regression.py
    PYTHONPATH=src python tools/check_bench_regression.py --max-regression 0.4
    PYTHONPATH=src python tools/check_bench_regression.py --write-baseline

``--write-baseline`` snapshots the current summary as the new baseline
(commit the result) — run it after a deliberate perf change, with fresh
numbers from the benches the CI jobs run.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SUMMARY = REPO_ROOT / "benchmarks" / "results" / "BENCH_summary.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_baseline.json"

#: numeric columns gated by the regression check (higher is better)
THROUGHPUT_RE = re.compile(r"throughput|_per_s$|_per_sec$", re.IGNORECASE)


def load_entries(path: Path) -> Dict[str, List[Dict[str, object]]]:
    document = json.loads(path.read_text())
    entries = document.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"{path} has no 'entries' mapping (schema mismatch?)")
    return {
        name: rows for name, rows in entries.items() if isinstance(rows, list)
    }


def _identity(row: Dict[str, object]) -> Dict[str, object]:
    """The row's identity columns: strings/bools only.

    Numeric columns are measurements (they vary run to run), so identity is
    anchored on categorical columns like ``mode``/``model``; rows are paired
    positionally and benches emit rows in deterministic order, making this a
    safety net against a bench re-ordering its output, not a join key.
    """
    return {
        key: value
        for key, value in row.items()
        if not THROUGHPUT_RE.search(key) and isinstance(value, (str, bool))
    }


def compare_rows(
    entry: str,
    index: int,
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
) -> Tuple[List[str], List[str], int]:
    """Returns (failures, warnings, gated_metric_count) for one row pair."""
    failures: List[str] = []
    warnings: List[str] = []
    current_id, baseline_id = _identity(current), _identity(baseline)
    shared_id = set(current_id) & set(baseline_id)
    if any(current_id[key] != baseline_id[key] for key in shared_id):
        warnings.append(
            f"{entry}[{index}]: row identity changed "
            f"({ {k: baseline_id[k] for k in sorted(shared_id)} } -> "
            f"{ {k: current_id[k] for k in sorted(shared_id)} }); skipping"
        )
        return failures, warnings, 0
    gated = 0
    for key, base_value in baseline.items():
        if not THROUGHPUT_RE.search(key):
            continue
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            continue
        value = current.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            warnings.append(f"{entry}[{index}].{key}: missing in current run; skipping")
            continue
        gated += 1
        floor = base_value * (1.0 - max_regression)
        if value < floor:
            failures.append(
                f"{entry}[{index}].{key}: {value:g} is "
                f"{(1 - value / base_value) * 100:.1f}% below baseline "
                f"{base_value:g} (allowed {max_regression * 100:.0f}%)"
            )
    return failures, warnings, gated


def check(
    summary_path: Path, baseline_path: Path, max_regression: float
) -> int:
    current_entries = load_entries(summary_path)
    baseline_entries = load_entries(baseline_path)
    shared = sorted(set(current_entries) & set(baseline_entries))
    skipped = sorted(set(baseline_entries) - set(current_entries))
    failures: List[str] = []
    warnings: List[str] = []
    gated = 0
    for entry in shared:
        current_rows = current_entries[entry]
        baseline_rows = baseline_entries[entry]
        if len(current_rows) != len(baseline_rows):
            warnings.append(
                f"{entry}: row count changed ({len(baseline_rows)} -> "
                f"{len(current_rows)}); comparing the common prefix"
            )
        for index, (current, baseline) in enumerate(zip(current_rows, baseline_rows)):
            row_failures, row_warnings, row_gated = compare_rows(
                entry, index, current, baseline, max_regression
            )
            failures.extend(row_failures)
            warnings.extend(row_warnings)
            gated += row_gated
    for warning in warnings:
        print(f"warning: {warning}")
    if skipped:
        print(f"skipped (not in this run): {', '.join(skipped)}")
    if failures:
        print("\nTHROUGHPUT REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {gated} throughput metric(s) across {len(shared)} benchmark(s) "
        f"within {max_regression * 100:.0f}% of baseline"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--summary", type=Path, default=DEFAULT_SUMMARY)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop per metric (default 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current summary as the new baseline and exit",
    )
    args = parser.parse_args(argv)
    if not args.summary.exists():
        print(f"error: no benchmark summary at {args.summary} (run the benches first)",
              file=sys.stderr)
        return 1
    if args.write_baseline:
        load_entries(args.summary)  # refuse to enshrine an unparseable summary
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.summary, args.baseline)
        print(f"baseline written: {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(
            f"error: no baseline at {args.baseline}; create one with "
            "--write-baseline and commit it",
            file=sys.stderr,
        )
        return 1
    return check(args.summary, args.baseline, args.max_regression)


if __name__ == "__main__":
    raise SystemExit(main())
